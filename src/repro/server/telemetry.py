"""Metrics registry of the solve server.

Serving a stream of solve requests is only tunable if the server can answer
"what happened": how many requests were admitted or rejected (and why), how
deep the queue is, how long solves took, how many iterations they needed, how
often the artifact cache saved a preconditioner build.  This module provides
the three classic instrument kinds —

* :class:`Counter` — monotonically increasing event count,
* :class:`Gauge` — last-written value (queue depth, in-flight jobs),
* :class:`Histogram` — distribution of observations with quantile estimates
  (latency, iteration counts, batch sizes),

— collected in a thread-safe :class:`MetricsRegistry` whose :meth:`snapshot`
is a plain JSON-serialisable dict (the CI benchmark artifact and the
``repro-serve`` CLI both print it verbatim).

Instruments are created on first use (``registry.counter("x").add(1)``), so
call sites never need registration boilerplate.
"""

from __future__ import annotations

import json
import threading

import numpy as np

from repro.exceptions import ParameterError

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

#: Default cap on retained histogram samples.  Beyond it the histogram keeps
#: exact count / sum / min / max but estimates quantiles from the retained
#: prefix — bounded memory under sustained traffic.
DEFAULT_MAX_SAMPLES = 65_536


class Counter:
    """Monotonically increasing event counter."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    @property
    def value(self) -> int:
        """Current count."""
        with self._lock:
            return self._value

    def add(self, amount: int = 1) -> None:
        """Increment by ``amount`` (must be >= 0: counters never go down)."""
        if amount < 0:
            raise ParameterError(
                f"counter {self.name}: increment must be >= 0, got {amount}")
        with self._lock:
            self._value += int(amount)


class Gauge:
    """Last-written value (e.g. current queue depth)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    @property
    def value(self) -> float:
        """Most recently set value."""
        with self._lock:
            return self._value

    def set(self, value: float) -> None:
        """Overwrite the gauge."""
        with self._lock:
            self._value = float(value)

    def add(self, delta: float) -> None:
        """Adjust the gauge by ``delta`` (may be negative)."""
        with self._lock:
            self._value += float(delta)


class Histogram:
    """Distribution of float observations with quantile estimates.

    Keeps exact ``count`` / ``sum`` / ``min`` / ``max`` for every observation
    and retains up to ``max_samples`` raw values for quantile estimation.
    """

    def __init__(self, name: str, *,
                 max_samples: int = DEFAULT_MAX_SAMPLES) -> None:
        if max_samples < 1:
            raise ParameterError(
                f"histogram {name}: max_samples must be >= 1, got {max_samples}")
        self.name = name
        self._max_samples = int(max_samples)
        self._samples: list[float] = []
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        self._lock = threading.Lock()

    @property
    def count(self) -> int:
        """Number of observations recorded."""
        with self._lock:
            return self._count

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        with self._lock:
            self._count += 1
            self._sum += value
            self._min = min(self._min, value)
            self._max = max(self._max, value)
            if len(self._samples) < self._max_samples:
                self._samples.append(value)

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (``q`` in [0, 1]); ``nan`` when empty."""
        if not 0.0 <= q <= 1.0:
            raise ParameterError(f"quantile must lie in [0, 1], got {q}")
        with self._lock:
            if not self._samples:
                return float("nan")
            return float(np.quantile(np.asarray(self._samples), q))

    def summary(self) -> dict[str, float]:
        """count / mean / min / p50 / p95 / max as a plain dict."""
        with self._lock:
            if self._count == 0:
                return {"count": 0, "mean": float("nan"), "min": float("nan"),
                        "p50": float("nan"), "p95": float("nan"),
                        "max": float("nan")}
            samples = np.asarray(self._samples)
            return {
                "count": self._count,
                "mean": self._sum / self._count,
                "min": self._min,
                "p50": float(np.quantile(samples, 0.50)),
                "p95": float(np.quantile(samples, 0.95)),
                "max": self._max,
            }


class MetricsRegistry:
    """Named instruments, created on first use, snapshot-able to JSON."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """The counter registered under ``name`` (created when missing)."""
        with self._lock:
            if name not in self._counters:
                self._counters[name] = Counter(name)
            return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        """The gauge registered under ``name`` (created when missing)."""
        with self._lock:
            if name not in self._gauges:
                self._gauges[name] = Gauge(name)
            return self._gauges[name]

    def histogram(self, name: str, *,
                  max_samples: int = DEFAULT_MAX_SAMPLES) -> Histogram:
        """The histogram registered under ``name`` (created when missing)."""
        with self._lock:
            if name not in self._histograms:
                self._histograms[name] = Histogram(name, max_samples=max_samples)
            return self._histograms[name]

    def snapshot(self) -> dict:
        """Every instrument's current state as a JSON-serialisable dict.

        ``nan`` values (empty histograms) are mapped to ``None`` so the
        result round-trips through strict JSON parsers.
        """
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)

        def clean(value: float) -> float | None:
            return None if isinstance(value, float) and np.isnan(value) else value

        return {
            "counters": {name: c.value for name, c in sorted(counters.items())},
            "gauges": {name: g.value for name, g in sorted(gauges.items())},
            "histograms": {
                name: {key: clean(val) for key, val in h.summary().items()}
                for name, h in sorted(histograms.items())
            },
        }

    def to_json(self, *, indent: int | None = 2) -> str:
        """The snapshot rendered as a JSON string."""
        return json.dumps(self.snapshot(), indent=indent)
