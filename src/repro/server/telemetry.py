"""Metrics registry of the solve server.

Serving a stream of solve requests is only tunable if the server can answer
"what happened": how many requests were admitted or rejected (and why), how
deep the queue is, how long solves took, how many iterations they needed, how
often the artifact cache saved a preconditioner build.  This module provides
the three classic instrument kinds —

* :class:`Counter` — monotonically increasing event count,
* :class:`Gauge` — last-written value (queue depth, in-flight jobs),
* :class:`Histogram` — distribution of observations with quantile estimates
  (latency, iteration counts, batch sizes),

— collected in a thread-safe :class:`MetricsRegistry` whose :meth:`snapshot`
is a plain JSON-serialisable dict (the CI benchmark artifact and the
``repro-serve`` CLI both print it verbatim).

Instruments are created on first use (``registry.counter("x").add(1)``), so
call sites never need registration boilerplate.  Instruments may carry
**labels** (``registry.counter("solve.rejected", reason="queue_full")``):
each distinct label set is its own instrument, stored under the rendered key
``solve.rejected{reason="queue_full"}``.  Unlabeled instruments keep their
plain name as the key, so the snapshot shape is unchanged for existing call
sites.

Histograms keep exact ``count`` / ``sum`` / ``min`` / ``max`` forever and
retain a bounded *reservoir* of raw samples for quantile estimation
(Algorithm R with a per-instrument seeded RNG), so quantiles track the whole
observation stream — not just the first ``max_samples`` values — while memory
stays bounded and repeated runs are deterministic.
"""

from __future__ import annotations

import json
import random
import re
import threading
import zlib

import numpy as np

from repro.exceptions import ParameterError

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "render_label_key", "parse_label_key"]

#: Default cap on retained histogram samples.  Beyond it the histogram keeps
#: exact count / sum / min / max and estimates quantiles from a uniform
#: reservoir over all observations — bounded memory under sustained traffic.
DEFAULT_MAX_SAMPLES = 65_536

_LABEL_NAME_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*\Z")


def _escape_label_value(value: str) -> str:
    return (value.replace("\\", r"\\")
            .replace('"', r"\"")
            .replace("\n", r"\n"))


def render_label_key(name: str, labels: dict[str, str]) -> str:
    """Canonical storage key for an instrument: ``name{k="v",...}``.

    Labels are sorted by name and values escaped exactly as in the Prometheus
    text exposition format, so a key is both stable (one key per label set)
    and human-readable in snapshots.  An empty label set renders as the bare
    name — the pre-label snapshot shape.
    """
    if not labels:
        return name
    inner = ",".join(f'{key}="{_escape_label_value(value)}"'
                     for key, value in sorted(labels.items()))
    return f"{name}{{{inner}}}"


_LABEL_ITEM_RE = re.compile(
    r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"(?:,|\Z)')


def _unescape_label_value(value: str) -> str:
    out: list[str] = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            out.append({"n": "\n", "\\": "\\", '"': '"'}.get(nxt, "\\" + nxt))
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def parse_label_key(key: str) -> tuple[str, dict[str, str]]:
    """Inverse of :func:`render_label_key`: ``name{k="v"}`` → name + labels.

    The fleet router uses this to re-key replica snapshot entries with an
    added ``replica`` label while keeping any labels the replica already
    rendered.  Raises :class:`~repro.exceptions.ParameterError` on keys this
    module could not have produced.
    """
    if not (key.endswith("}") and "{" in key):
        return key, {}
    name, _, inner = key.partition("{")
    inner = inner[:-1]
    labels: dict[str, str] = {}
    pos = 0
    while pos < len(inner):
        match = _LABEL_ITEM_RE.match(inner, pos)
        if match is None:
            raise ParameterError(
                f"malformed instrument key {key!r} at offset {pos}")
        labels[match.group("key")] = _unescape_label_value(
            match.group("value"))
        pos = match.end()
    return name, labels


def _validate_labels(name: str, labels: dict[str, object]) -> dict[str, str]:
    clean: dict[str, str] = {}
    for key, value in labels.items():
        if not _LABEL_NAME_RE.match(key):
            raise ParameterError(
                f"metric {name}: label name {key!r} is not a valid "
                "identifier ([a-zA-Z_][a-zA-Z0-9_]*)")
        clean[key] = str(value)
    return clean


class Counter:
    """Monotonically increasing event counter."""

    def __init__(self, name: str, *, labels: dict[str, str] | None = None) -> None:
        self.name = name
        self.labels = dict(labels or {})
        self.key = render_label_key(name, self.labels)
        self._value = 0
        self._lock = threading.Lock()

    @property
    def value(self) -> int:
        """Current count."""
        with self._lock:
            return self._value

    def add(self, amount: int = 1) -> None:
        """Increment by ``amount`` (must be >= 0: counters never go down)."""
        if amount < 0:
            raise ParameterError(
                f"counter {self.name}: increment must be >= 0, got {amount}")
        with self._lock:
            self._value += int(amount)


class Gauge:
    """Last-written value (e.g. current queue depth)."""

    def __init__(self, name: str, *, labels: dict[str, str] | None = None) -> None:
        self.name = name
        self.labels = dict(labels or {})
        self.key = render_label_key(name, self.labels)
        self._value = 0.0
        self._lock = threading.Lock()

    @property
    def value(self) -> float:
        """Most recently set value."""
        with self._lock:
            return self._value

    def set(self, value: float) -> None:
        """Overwrite the gauge."""
        with self._lock:
            self._value = float(value)

    def add(self, delta: float) -> None:
        """Adjust the gauge by ``delta`` (may be negative)."""
        with self._lock:
            self._value += float(delta)


class Histogram:
    """Distribution of float observations with quantile estimates.

    Keeps exact ``count`` / ``sum`` / ``min`` / ``max`` for every observation
    and a uniform reservoir of up to ``max_samples`` raw values for quantile
    estimation (Algorithm R: observation ``i`` survives with probability
    ``max_samples / i`` once the reservoir is full).  The reservoir RNG is
    seeded from the instrument key, so identical observation streams yield
    identical quantile estimates across runs.
    """

    def __init__(self, name: str, *,
                 max_samples: int = DEFAULT_MAX_SAMPLES,
                 labels: dict[str, str] | None = None) -> None:
        if max_samples < 1:
            raise ParameterError(
                f"histogram {name}: max_samples must be >= 1, got {max_samples}")
        self.name = name
        self.labels = dict(labels or {})
        self.key = render_label_key(name, self.labels)
        self._max_samples = int(max_samples)
        self._samples: list[float] = []
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        self._rng = random.Random(zlib.crc32(self.key.encode("utf-8")))
        self._lock = threading.Lock()

    @property
    def count(self) -> int:
        """Number of observations recorded."""
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        """Exact sum of all observations."""
        with self._lock:
            return self._sum

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        with self._lock:
            self._count += 1
            self._sum += value
            self._min = min(self._min, value)
            self._max = max(self._max, value)
            if len(self._samples) < self._max_samples:
                self._samples.append(value)
            else:
                # Algorithm R: keep each observation with probability k/i so
                # the reservoir stays a uniform sample of the whole stream.
                slot = self._rng.randrange(self._count)
                if slot < self._max_samples:
                    self._samples[slot] = value

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (``q`` in [0, 1]); ``nan`` when empty."""
        if not 0.0 <= q <= 1.0:
            raise ParameterError(f"quantile must lie in [0, 1], got {q}")
        with self._lock:
            if not self._samples:
                return float("nan")
            return float(np.quantile(np.asarray(self._samples), q))

    def summary(self) -> dict[str, float]:
        """count / mean / min / p50 / p95 / p99 / max as a plain dict."""
        with self._lock:
            if self._count == 0:
                return {"count": 0, "mean": float("nan"), "min": float("nan"),
                        "p50": float("nan"), "p95": float("nan"),
                        "p99": float("nan"), "max": float("nan")}
            samples = np.asarray(self._samples)
            return {
                "count": self._count,
                "mean": self._sum / self._count,
                "min": self._min,
                "p50": float(np.quantile(samples, 0.50)),
                "p95": float(np.quantile(samples, 0.95)),
                "p99": float(np.quantile(samples, 0.99)),
                "max": self._max,
            }


class MetricsRegistry:
    """Named instruments, created on first use, snapshot-able to JSON."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str, **labels: object) -> Counter:
        """The counter for ``name`` + label set (created when missing)."""
        clean = _validate_labels(name, labels)
        key = render_label_key(name, clean)
        with self._lock:
            if key not in self._counters:
                self._counters[key] = Counter(name, labels=clean)
            return self._counters[key]

    def gauge(self, name: str, **labels: object) -> Gauge:
        """The gauge for ``name`` + label set (created when missing)."""
        clean = _validate_labels(name, labels)
        key = render_label_key(name, clean)
        with self._lock:
            if key not in self._gauges:
                self._gauges[key] = Gauge(name, labels=clean)
            return self._gauges[key]

    def histogram(self, name: str, *,
                  max_samples: int = DEFAULT_MAX_SAMPLES,
                  **labels: object) -> Histogram:
        """The histogram for ``name`` + label set (created when missing)."""
        clean = _validate_labels(name, labels)
        key = render_label_key(name, clean)
        with self._lock:
            if key not in self._histograms:
                self._histograms[key] = Histogram(
                    name, max_samples=max_samples, labels=clean)
            return self._histograms[key]

    def instruments(self) -> dict[str, list]:
        """All registered instruments, by kind, sorted by key.

        The Prometheus renderer walks this to group label sets of the same
        metric name into one family.
        """
        with self._lock:
            return {
                "counters": [self._counters[k] for k in sorted(self._counters)],
                "gauges": [self._gauges[k] for k in sorted(self._gauges)],
                "histograms": [self._histograms[k]
                               for k in sorted(self._histograms)],
            }

    def snapshot(self) -> dict:
        """Every instrument's current state as a JSON-serialisable dict.

        Labeled instruments appear under their rendered key
        (``name{k="v"}``); unlabeled instruments under their plain name, so
        pre-label consumers see the same shape as before.  ``nan`` values
        (empty histograms) are mapped to ``None`` so the result round-trips
        through strict JSON parsers.
        """
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)

        def clean(value: float) -> float | None:
            return None if isinstance(value, float) and np.isnan(value) else value

        return {
            "counters": {key: c.value for key, c in sorted(counters.items())},
            "gauges": {key: g.value for key, g in sorted(gauges.items())},
            "histograms": {
                key: {k: clean(v) for k, v in h.summary().items()}
                for key, h in sorted(histograms.items())
            },
        }

    def to_json(self, *, indent: int | None = 2) -> str:
        """The snapshot rendered as a JSON string."""
        return json.dumps(self.snapshot(), indent=indent)
