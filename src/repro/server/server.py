"""The :class:`SolveServer` facade: submit / await / drain / shutdown.

This is the front door the rest of the stack (CLI, examples, benchmarks,
embedding applications) talks to.  It wires together the four server parts —
admission queue, fingerprint-batching scheduler, preconditioner policy and
telemetry — on top of the PR-2 service layer (artifact cache + observation
store).

Two serving modes, same arithmetic:

* **Synchronous** — :meth:`solve` executes the request immediately in the
  calling thread (through the same scheduler path, batch of one).
* **Queued** — :meth:`submit` admits the request and returns a
  :class:`~repro.server.queue.Job`; a background worker (started lazily, or
  explicitly with :meth:`start`) pops priority-ordered batches and executes
  them.  :meth:`drain` gracefully quiesces: admission pauses, everything
  admitted completes, admission re-opens.

Because policy decisions come from a store snapshot and shared builds are
seeded from matrix fingerprints, a seeded request stream produces
bit-identical solutions in either mode — batching is purely an efficiency
lever, never a semantic one.  That contract holds for the default
``batch_mode="loop"``; opting a server (or a request) into ``"block"`` /
``"auto"`` trades it for block-Krylov amortisation: answers then agree with
the loop path to the solve tolerance instead of to the bit (see
:mod:`repro.krylov.block`).
"""

from __future__ import annotations

import os
import threading
import time
import uuid

from repro.api.schemas import SolveRequestV1 as SolveRequest
from repro.api.schemas import SolveResponseV1 as SolveResponse
from repro.api.versioning import SCHEMA_VERSION, version_stamp
from repro.exceptions import ParameterError
from repro.logging_utils import get_logger
from repro.mcmc.parameters import DEFAULT_BOUNDS, ParameterBounds
from repro.obs.prometheus import render_prometheus
from repro.obs.trace import NULL_TRACER, current_trace_id, new_trace_id
from repro.parallel.executor import Executor
from repro.server.policy import PreconditionerPolicy
from repro.server.queue import Job, JobQueue
from repro.server.scheduler import Scheduler, end_job_trace
from repro.server.telemetry import MetricsRegistry
from repro.service.cache import ArtifactCache, global_cache
from repro.service.store import ObservationStore

__all__ = ["SolveServer"]

_LOG = get_logger("server")


class SolveServer:
    """In-process solve service with admission control and batched scheduling.

    Parameters
    ----------
    store:
        Observation store (path or open store) for policy reuse and online
        feedback; ``None`` disables both.
    cache:
        Shared artifact cache; the process-wide cache when ``None``.
    executor:
        Executor running independent request groups; serial when ``None``.
    max_queue_depth:
        Admission bound of the queue (backpressure threshold).
    batch_max:
        Maximum jobs popped per scheduling round (``None`` = everything
        pending, maximising fingerprint-sharing within a round).
    record_observations:
        Whether MCMC solves are persisted into ``store`` as performance
        records.
    bounds:
        Parameter box for warm-started MCMC parameters.
    background:
        When True (default) :meth:`submit` lazily starts a background
        worker that consumes the queue.  When False, admitted jobs wait
        until :meth:`drain` executes them inline — queued requests then
        accumulate first and batch maximally, which is both the
        deterministic mode tests rely on and the highest-throughput mode
        for offline bulk serving.
    batch_mode:
        Default multi-rhs execution mode of a same-fingerprint group:
        ``"loop"`` (default; batched serving stays bit-identical to
        synchronous serving), ``"block"`` or ``"auto"`` (shared
        block-Krylov subspace per group — far fewer matvecs, answers
        identical to the solve tolerance, *not* to the bit).  Requests may
        override it individually via
        :attr:`~repro.api.schemas.SolveRequestV1.batch_mode`.
    tracer:
        A :class:`repro.obs.trace.Tracer` to record per-request span trees
        (admission → queue wait → policy → preconditioner → solve).
        ``None`` (the default) installs the no-op tracer: the request path
        then performs no id generation, no clock reads and no buffering,
        and solutions are bit-identical either way.
    learn:
        Opt into the online learning loop (``repro-serve --learn``): a
        :class:`~repro.learn.trainer.SurrogateTrainer` trains the GNN
        surrogate from this server's observation store in the background
        and publishes versioned models to ``model_dir``; the policy gains
        a surrogate stage that proposes MCMC parameters by Expected
        Improvement (decisions carry ``origin="surrogate"`` and the model
        version); the scheduler shadow-evaluates every decision origin
        through the ``policy.regret`` histogram.  Default ``False`` keeps
        serving bit-identical to a learning-free server —
        :mod:`repro.learn` is then never even imported.
    model_dir:
        Root of the :class:`~repro.learn.registry.ModelRegistry`
        (required when ``learn=True``).  A registry that already holds a
        published model is restored at boot, so a restarted server serves
        surrogate decisions before its first retrain.
    learn_config:
        Optional :class:`~repro.learn.trainer.LearnConfig` overriding the
        training cadence/budget defaults.
    """

    def __init__(self, *, store: ObservationStore | str | None = None,
                 cache: ArtifactCache | None = None,
                 executor: Executor | None = None,
                 max_queue_depth: int = 256,
                 batch_max: int | None = None,
                 record_observations: bool = True,
                 bounds: ParameterBounds = DEFAULT_BOUNDS,
                 background: bool = True,
                 telemetry: MetricsRegistry | None = None,
                 batch_mode: str = "loop",
                 tracer=None,
                 learn: bool = False,
                 model_dir: str | None = None,
                 learn_config=None) -> None:
        # Stable identity of *this server instance*: a restarted replica
        # gets a fresh id (and a later started_at), which is how the fleet
        # router detects silent restarts — the restarted replica's
        # fingerprint-shard cache is cold even though the URL is unchanged.
        self.replica_id = uuid.uuid4().hex[:16]
        self.started_at = time.time()
        self.store = (ObservationStore(store)
                      if isinstance(store, (str, bytes)) or hasattr(store, "__fspath__")
                      else store)
        self.cache = cache if cache is not None else global_cache()
        self.telemetry = telemetry if telemetry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.learn_enabled = bool(learn)
        self.trainer = None
        self.surrogate = None
        self.model_registry = None
        self._matrix_bank = None
        if self.learn_enabled:
            self._init_learning(model_dir, learn_config, bounds)
        self.policy = PreconditionerPolicy(self.store, bounds=bounds,
                                           surrogate=self.surrogate)
        self.queue = JobQueue(max_depth=max_queue_depth)
        self.scheduler = Scheduler(
            policy=self.policy, cache=self.cache, executor=executor,
            telemetry=self.telemetry, store=self.store,
            record_observations=record_observations,
            batch_mode=batch_mode, tracer=self.tracer,
            matrix_bank=self._matrix_bank,
            shadow_eval=self.learn_enabled)
        if batch_max is not None and batch_max < 1:
            raise ParameterError(
                f"batch_max must be >= 1 (or None), got {batch_max}")
        self._batch_max = batch_max
        self._background = bool(background)
        self._worker: threading.Thread | None = None
        self._stop = threading.Event()
        self._lock = threading.Lock()
        if self.trainer is not None:
            # Background retraining starts only after the server is fully
            # wired; the synchronous warm-store bootstrap already ran.
            self.trainer.start()

    def _init_learning(self, model_dir, learn_config, bounds) -> None:
        """Construct the online-learning loop (``learn=True`` only).

        Imports :mod:`repro.learn` lazily so a learning-free server never
        pays for (or depends on) the subsystem.  When the store is already
        warm enough, the first generation trains *synchronously* here —
        a deterministic bootstrap the CI smoke test and the A/B benchmark
        rely on (no sleeping until a background tick fires).
        """
        from repro.learn import (
            LearnConfig,
            MatrixBank,
            ModelRegistry,
            SurrogatePolicy,
            SurrogateTrainer,
        )

        if self.store is None:
            raise ParameterError("learn=True requires an observation store")
        if model_dir is None:
            raise ParameterError("learn=True requires model_dir")
        config = learn_config if learn_config is not None else LearnConfig()
        registry = ModelRegistry(model_dir)
        self.model_registry = registry
        self._matrix_bank = MatrixBank()
        surrogate = SurrogatePolicy(
            bounds=bounds, xi=config.xi, n_restarts=config.n_restarts,
            max_sigma=config.max_sigma, telemetry=self.telemetry)
        self.surrogate = surrogate
        self.trainer = SurrogateTrainer(
            self.store, registry, bank=self._matrix_bank, config=config,
            telemetry=self.telemetry, tracer=self.tracer,
            on_publish=lambda model, dataset, version, meta:
                surrogate.update(model, dataset, version, meta))
        if registry.current_version() is not None:
            try:
                if surrogate.restore(registry, self.store,
                                     bank=self._matrix_bank):
                    _LOG.info("restored surrogate model %s",
                              surrogate.model_version)
            except Exception:  # noqa: BLE001 - serving must boot regardless
                _LOG.exception("surrogate restore failed; serving without it")
        if (config.train_on_start and not surrogate.ready
                and self.trainer.should_train()):
            try:
                self.trainer.train_generation()
            except Exception:  # noqa: BLE001 - serving must boot regardless
                _LOG.exception("bootstrap training failed; serving without it")

    # -- synchronous serving -------------------------------------------------
    def solve(self, request: SolveRequest) -> SolveResponse:
        """Serve one request immediately in the calling thread.

        Runs through the exact scheduler path a queued batch takes (policy,
        shared cache, multi-rhs solve of a batch of one), so the answer is
        bit-identical to the queued route.
        """
        job = self._admit(request)
        # Claim jobs for inline execution.  Under a running background
        # worker this may also pick up other pending jobs — they would have
        # been served next anyway; serving them here just shortens the queue.
        batch = self.queue.pop_batch()
        self._execute(batch)
        # If the background worker raced us to the batch, result() waits.
        return job.result()

    # -- queued serving ------------------------------------------------------
    def submit(self, request: SolveRequest) -> Job:
        """Admit a request into the queue and return its job handle.

        Raises :class:`~repro.server.queue.AdmissionError` (with a reason)
        when the request is invalid, the queue is full, draining or closed.
        The job is executed by the background worker (started lazily) —
        call :meth:`drain` to force completion of everything admitted.
        """
        job = self._admit(request)
        if self._background:
            self._ensure_worker()
        return job

    def submit_many(self, requests: list[SolveRequest]) -> list[Job]:
        """Submit several requests; admission failures abort the remainder."""
        return [self.submit(request) for request in requests]

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> None:
        """Start the background worker explicitly (submit also starts it)."""
        self._ensure_worker()

    def drain(self, timeout: float | None = None) -> bool:
        """Complete everything admitted; pause admission while waiting.

        Returns True when the server went idle within ``timeout``.  With no
        background worker running, pending jobs are executed inline in the
        calling thread — a deterministic, thread-free mode tests and batch
        scripts rely on.
        """
        if self._worker is not None and self._worker.is_alive():
            return self.queue.drain(timeout=timeout)
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            batch = self.queue.pop_batch(self._batch_max)
            if batch:
                self._execute(batch)
                continue
            # queue.drain pauses admission while it confirms idleness, so a
            # submission racing the empty pop above either loses (rejected
            # as "draining") or was admitted first — in which case drain
            # reports non-idle and the loop goes back to executing it.
            if self.queue.drain(timeout=0):
                return True
            if deadline is not None and time.monotonic() >= deadline:
                return False
            # Not idle but nothing poppable: another thread holds in-flight
            # jobs (e.g. a concurrent solve()); yield instead of spinning.
            time.sleep(0.001)

    def shutdown(self, timeout: float | None = 30.0) -> None:
        """Close admission, finish admitted work, stop the worker."""
        if self.trainer is not None:
            # Stop retraining first: a mid-training abort leaves (at most) an
            # atomic checkpoint behind, which the next boot resumes from.
            self.trainer.stop()
        self.queue.close()
        self.drain(timeout=timeout)
        self._stop.set()
        worker = self._worker
        if worker is not None and worker.is_alive():
            worker.join(timeout=5.0)
        self._worker = None
        _LOG.info("server shut down (%d jobs served)",
                  self.telemetry.counter("solves_total").value)

    def __enter__(self) -> "SolveServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # -- observability -------------------------------------------------------
    def telemetry_snapshot(self) -> dict:
        """Metrics snapshot including queue state and artifact-cache stats."""
        self._observe_depth()
        snapshot = self.telemetry.snapshot()
        snapshot["queue"] = {
            "depth": self.queue.depth,
            "inflight": self.queue.inflight,
            "admitted": self.queue.admitted,
            "max_depth": self.queue.max_depth,
            "closed": self.queue.closed,
        }
        snapshot["artifact_cache"] = self.cache.stats.as_dict()
        return snapshot

    def prometheus_metrics(self) -> str:
        """Every instrument in Prometheus text-exposition format.

        Queue state and artifact-cache stats (which live outside the
        registry) are merged in as gauges, so one scrape covers the whole
        server (``GET /v1/metrics?format=prometheus``).
        """
        self._observe_depth()
        extra = {
            "queue.admitted": float(self.queue.admitted),
            "queue.max_depth": float(self.queue.max_depth),
        }
        for key, value in self.cache.stats.as_dict().items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                extra[f"artifact_cache.{key}"] = float(value)
        return render_prometheus(self.telemetry, extra_gauges=extra)

    def refresh_policy(self) -> None:
        """Re-snapshot the store so decisions see records written since."""
        self.policy.refresh()

    def learn_status(self) -> dict:
        """Admin view of the online learning loop (``GET /v1/learn``).

        ``{"enabled": False}`` on a learning-free server; otherwise the
        trainer's status (state, model version, record counters, last train
        wall time) plus what the *serving* policy currently holds — the two
        can differ transiently between a publish and the hand-off.
        """
        payload = version_stamp("learn")
        if self.trainer is None:
            payload["enabled"] = False
            return payload
        payload.update(self.trainer.status())
        payload["policy_model_version"] = self.surrogate.model_version
        payload["policy_ready"] = self.surrogate.ready
        payload["banked_matrices"] = (0 if self._matrix_bank is None
                                      else len(self._matrix_bank))
        return payload

    def health_snapshot(self) -> dict:
        """Liveness + queue state, the single source of every transport's
        health answer (``GET /v1/healthz`` and ``InProcessClient.health``)."""
        from repro.version import __version__

        payload = version_stamp("health")
        payload.update({
            "status": "closed" if self.queue.closed else "ok",
            "server_version": __version__,
            "schema_version": SCHEMA_VERSION,
            "queue_depth": self.queue.depth,
            "inflight": self.queue.inflight,
            "replica_id": self.replica_id,
            "started_at": self.started_at,
            "pid": os.getpid(),
        })
        return payload

    # -- internals -----------------------------------------------------------
    def _admit(self, request: SolveRequest) -> Job:
        tracer = self.tracer
        root = None
        trace_id = None
        if tracer.enabled:
            # Reuse the caller's ambient trace id (the HTTP adapter pins the
            # X-Repro-Trace-Id header) so one id follows the request across
            # the wire, the queue and the worker thread.
            trace_id = current_trace_id() or new_trace_id()
            root = tracer.begin(
                "request", trace_id=trace_id,
                solver=request.solver or "auto",
                preconditioner=request.preconditioner or "auto",
                priority=int(request.priority))
        admission = tracer.begin("admission", parent=root)
        try:
            job = self.queue.submit(request, trace_id=trace_id,
                                    root_span=root)
        except Exception as error:
            reason = getattr(error, "reason", "error")
            self.telemetry.counter(f"rejected.{reason}").add(1)
            self.telemetry.counter("solve.rejected", reason=reason).add(1)
            tracer.end(admission, outcome="rejected", reason=reason)
            if root is not None:
                tracer.end(root, outcome="rejected", reason=reason)
            raise
        tracer.end(admission, outcome="admitted", job_id=job.id)
        self.telemetry.counter("requests_admitted").add(1)
        self._observe_depth()
        return job

    def _observe_depth(self) -> None:
        self.telemetry.gauge("queue.depth").set(self.queue.depth)
        self.telemetry.gauge("queue.inflight").set(self.queue.inflight)

    def _execute(self, batch: list[Job]) -> None:
        if not batch:
            return
        try:
            self.scheduler.execute(batch)
        except Exception as error:  # noqa: BLE001 - must fail the jobs
            # An error escaping the scheduler (e.g. an executor that cannot
            # ship Job objects) must fail the affected jobs; falling through
            # would mark them DONE with a None result.
            _LOG.exception("batch execution failed")
            for job in batch:
                if not job.done():
                    self.telemetry.counter("jobs_failed").add(1)
                    job._finish(error=error)
                end_job_trace(self.tracer, job, outcome="error",
                              error=str(error))
        finally:
            for job in batch:
                self.queue.finish(job)
            self.telemetry.counter("batches_executed").add(1)
            self._observe_depth()

    def _ensure_worker(self) -> None:
        with self._lock:
            if self._worker is not None and self._worker.is_alive():
                return
            self._stop.clear()
            self._worker = threading.Thread(
                target=self._worker_loop, name="solve-server-worker",
                daemon=True)
            self._worker.start()

    def _worker_loop(self) -> None:
        while not self._stop.is_set():
            batch = self.queue.pop_batch(self._batch_max, timeout=0.05)
            if batch:
                self._execute(batch)
            elif self.queue.closed and self.queue.idle():
                return
            else:
                # pop_batch already waited on the condition; yield briefly to
                # avoid a hot loop when the queue stays empty.
                time.sleep(0.001)
