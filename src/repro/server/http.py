"""HTTP/JSON transport for the solve server (stdlib only).

Exposes a running :class:`~repro.server.server.SolveServer` over the
versioned wire protocol of :mod:`repro.api`, using nothing beyond
``http.server.ThreadingHTTPServer`` — no new dependencies.  The adapter is a
thin shell: every request is decoded into the same
:class:`~repro.api.schemas.SolveRequestV1` the in-process path admits, runs
through the *untouched* queue/scheduler/policy, and the response is encoded
losslessly — an HTTP round-trip under a fixed seed is bit-identical to the
in-process path (tested in ``tests/test_server_http.py``).

Endpoints
---------
=======  =================  ===================================================
method   path               body / answer
=======  =================  ===================================================
POST     ``/v1/solve``      ``solve_request`` → ``solve_response`` (sync)
POST     ``/v1/submit``     ``solve_request`` → ``job_status`` (queued, 202)
GET      ``/v1/jobs/<id>``  → ``job_status`` (result / error once finished)
GET      ``/v1/metrics``    → ``telemetry`` snapshot
                             (``?format=prometheus`` → text exposition)
GET      ``/v1/healthz``    → liveness + queue state
GET      ``/v1/learn``      → online-learning status (trainer state, model
                             version, record counters; ``enabled: false``
                             on a learning-free server)
=======  =================  ===================================================

Tracing: a client may send an ``X-Repro-Trace-Id`` header on solve/submit;
the server pins it as the ambient trace id for the request (so a traced
server's spans join the caller's trace) and echoes the id — the client's, or
the server-generated one when tracing is on — on the response header and in
``SolveResponseV1.trace_id``.

Failures travel as :class:`~repro.api.errors.ErrorEnvelope` bodies under the
HTTP status of their code: admission rejections keep their structured reason
(``invalid`` → 400, ``queue_full`` → 429, ``draining``/``closed`` → 503),
malformed JSON and schema violations map to ``bad_request`` (400), version
mismatches to ``unsupported_version`` (400), unknown jobs/paths to
``not_found`` (404), and anything unexpected to ``internal`` (500).
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs

from repro.api.errors import (
    AdmissionError,
    ErrorEnvelope,
    ERROR_BAD_REQUEST,
    ERROR_NOT_FOUND,
    SchemaError,
)
from repro.api.schemas import SolveRequestV1, TelemetrySnapshot
from repro.logging_utils import get_logger
from repro.obs.trace import use_trace_id
from repro.server.queue import Job, job_status
from repro.server.server import SolveServer
from repro.version import __version__

__all__ = ["SolveHTTPServer", "WireHandler", "TRACE_HEADER"]

_LOG = get_logger("server.http")

#: Request bodies beyond this size are rejected (``bad_request``) before any
#: decoding work happens — a wire server must bound what it buffers.
MAX_BODY_BYTES = 256 * 1024 * 1024

#: Header propagating a request's trace id in both directions.
TRACE_HEADER = "X-Repro-Trace-Id"

#: Longest accepted inbound trace id (anything longer is ignored — the
#: header is client-controlled and must not become an amplification vector
#: for span attributes and logs).
MAX_TRACE_ID_CHARS = 128


class WireHandler(BaseHTTPRequestHandler):
    """Transport plumbing shared by every ``/v1/*`` JSON wire handler.

    Owns the parts of speaking the wire protocol that are independent of
    *what* is being served: JSON/text responses with correct framing, typed
    :class:`~repro.api.errors.ErrorEnvelope` answers, bounded body reading,
    keep-alive-safe body draining, trace-header extraction and the
    exception-to-envelope dispatch.  :class:`SolveHTTPServer`'s handler and
    the fleet router's front end (:mod:`repro.fleet.router`) both subclass
    this, so the two wire surfaces cannot drift apart.
    """

    protocol_version = "HTTP/1.1"
    server_version = f"repro-serve/{__version__}"

    #: Logger of the concrete handler (subclasses override for their own
    #: channel).
    wire_log = _LOG

    # -- plumbing ------------------------------------------------------------
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        self.wire_log.debug("%s - %s", self.address_string(), format % args)

    def _send_json(self, status: int, payload: dict,
                   headers: dict[str, str] | None = None) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, text: str,
                   content_type: str = "text/plain; charset=utf-8") -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_envelope(self, envelope: ErrorEnvelope) -> None:
        self._send_json(envelope.http_status, envelope.to_json_dict())

    def _body_length(self) -> int:
        try:
            return int(self.headers.get("Content-Length", 0))
        except (TypeError, ValueError):
            return -1

    def _drain_body(self) -> None:
        """Consume an unread request body so keep-alive framing stays intact.

        Replying without reading the body would leave its bytes on the
        connection, where a keep-alive client's *next* request line would be
        parsed out of them.  Unknown or unreasonable lengths instead mark
        the connection for closing.
        """
        length = self._body_length()
        if length < 0 or length > MAX_BODY_BYTES:
            self.close_connection = True
            return
        while length > 0:
            chunk = self.rfile.read(min(length, 1 << 20))
            if not chunk:
                self.close_connection = True
                return
            length -= len(chunk)

    def _request_trace_id(self) -> str | None:
        """The caller's trace id from ``X-Repro-Trace-Id``, if plausible."""
        raw = self.headers.get(TRACE_HEADER)
        if raw is None:
            return None
        raw = raw.strip()
        if not raw or len(raw) > MAX_TRACE_ID_CHARS:
            return None
        return raw

    def _split_path(self) -> tuple[str, dict[str, list[str]]]:
        """``self.path`` split into the route and its parsed query string."""
        route, _, query = self.path.partition("?")
        return route, parse_qs(query)

    def _read_body(self) -> bytes:
        """The request body, bounded by :data:`MAX_BODY_BYTES`."""
        length = self._body_length()
        if length < 0:
            self.close_connection = True
            raise SchemaError("Content-Length header is not an integer")
        if length == 0:
            raise SchemaError("request body is empty")
        if length > MAX_BODY_BYTES:
            # the oversized body stays unread; the connection cannot be
            # reused for a further request
            self.close_connection = True
            raise SchemaError(
                f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte bound")
        return self.rfile.read(length)

    def _dispatch(self, handler) -> None:
        try:
            handler()
        except (AdmissionError, SchemaError) as error:
            self._send_error_envelope(ErrorEnvelope.from_exception(error))
        except BrokenPipeError:
            pass  # client went away mid-answer; nothing to send it
        except Exception as error:  # noqa: BLE001 - the wire must answer
            self.wire_log.exception("unhandled error serving %s", self.path)
            self._send_error_envelope(ErrorEnvelope.from_exception(error))


class _Handler(WireHandler):
    """Routes one HTTP exchange onto the owning :class:`SolveHTTPServer`."""

    def _read_request_schema(self) -> SolveRequestV1:
        body = self._read_body()
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise SchemaError(f"request body is not valid JSON ({error})")
        return SolveRequestV1.from_json_dict(payload)

    # -- routes --------------------------------------------------------------
    def do_POST(self) -> None:  # noqa: N802 - http.server API
        route, _ = self._split_path()
        if route == "/v1/solve":
            self._dispatch(self._post_solve)
        elif route == "/v1/submit":
            self._dispatch(self._post_submit)
        else:
            self._drain_body()
            self._send_error_envelope(ErrorEnvelope(
                code=ERROR_NOT_FOUND, message=f"no such endpoint {self.path}"))

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        route, query = self._split_path()
        if route == "/v1/healthz":
            self._dispatch(self._get_healthz)
        elif route == "/v1/learn":
            self._dispatch(self._get_learn)
        elif route == "/v1/metrics":
            self._dispatch(lambda: self._get_metrics(query))
        elif route.startswith("/v1/jobs/"):
            self._dispatch(lambda: self._get_job(route))
        else:
            self._send_error_envelope(ErrorEnvelope(
                code=ERROR_NOT_FOUND, message=f"no such endpoint {self.path}"))

    def _post_solve(self) -> None:
        request = self._read_request_schema()
        trace_id = self._request_trace_id()
        with use_trace_id(trace_id):
            response = self.server.adapter.solve_server.solve(request)
        echo = response.trace_id or trace_id
        self._send_json(200, response.to_json_dict(),
                        headers=None if echo is None else {TRACE_HEADER: echo})

    def _post_submit(self) -> None:
        request = self._read_request_schema()
        trace_id = self._request_trace_id()
        with use_trace_id(trace_id):
            job = self.server.adapter.solve_server.submit(request)
        self.server.adapter.track_job(job)
        echo = job.trace_id or trace_id
        self._send_json(202, job_status(job).to_json_dict(),
                        headers=None if echo is None else {TRACE_HEADER: echo})

    def _get_job(self, route: str) -> None:
        token = route[len("/v1/jobs/"):]
        try:
            job_id = int(token)
        except ValueError:
            self._send_error_envelope(ErrorEnvelope(
                code=ERROR_BAD_REQUEST,
                message=f"job id {token!r} is not an integer"))
            return
        job = self.server.adapter.find_job(job_id)
        if job is None:
            self._send_error_envelope(ErrorEnvelope(
                code=ERROR_NOT_FOUND, message=f"no such job {job_id}"))
            return
        self._send_json(200, job_status(job).to_json_dict())

    def _get_metrics(self, query: dict[str, list[str]]) -> None:
        fmt = (query.get("format") or ["json"])[-1].lower()
        if fmt == "prometheus":
            self._send_text(
                200, self.server.adapter.solve_server.prometheus_metrics(),
                content_type="text/plain; version=0.0.4; charset=utf-8")
            return
        if fmt != "json":
            self._send_error_envelope(ErrorEnvelope(
                code=ERROR_BAD_REQUEST,
                message=f"unknown metrics format {fmt!r} "
                        "(expected 'json' or 'prometheus')"))
            return
        snapshot = TelemetrySnapshot.from_snapshot(
            self.server.adapter.solve_server.telemetry_snapshot())
        self._send_json(200, snapshot.to_json_dict())

    def _get_healthz(self) -> None:
        self._send_json(
            200, self.server.adapter.solve_server.health_snapshot())

    def _get_learn(self) -> None:
        self._send_json(
            200, self.server.adapter.solve_server.learn_status())


class _HTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that knows its owning adapter."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, adapter: "SolveHTTPServer") -> None:
        super().__init__(address, _Handler)
        self.adapter = adapter


class SolveHTTPServer:
    """Serve a :class:`SolveServer` over HTTP/JSON.

    Parameters
    ----------
    solve_server:
        The server to expose; a fresh one (owned, and shut down with the
        adapter) is built from ``server_kwargs`` when ``None``.
    host / port:
        Bind address; ``port=0`` picks an ephemeral port (see :attr:`port`
        after :meth:`start`).
    server_kwargs:
        Forwarded to :class:`SolveServer` when it is owned.

    Usage::

        with SolveHTTPServer(port=0) as http_server:
            client = HTTPClient(http_server.url)
            ...

    or blocking (the CLI's ``repro-serve --http`` mode)::

        SolveHTTPServer(port=8080).serve_forever()
    """

    def __init__(self, solve_server: SolveServer | None = None, *,
                 host: str = "127.0.0.1", port: int = 0,
                 max_tracked_jobs: int = 4096,
                 **server_kwargs) -> None:
        self._owns_solve_server = solve_server is None
        self.solve_server = (SolveServer(**server_kwargs)
                             if solve_server is None else solve_server)
        self._requested_address = (host, int(port))
        self._httpd: _HTTPServer | None = None
        self._thread: threading.Thread | None = None
        self._jobs: dict[int, Job] = {}
        self._jobs_lock = threading.Lock()
        self._max_tracked_jobs = max(int(max_tracked_jobs), 1)

    # -- job tracking (GET /v1/jobs/<id>) ------------------------------------
    def track_job(self, job: Job) -> None:
        """Remember a submitted job so its status can be queried later.

        The registry is bounded: beyond ``max_tracked_jobs`` the oldest
        *finished* jobs are evicted (their results — including full solution
        vectors — would otherwise accumulate for the lifetime of the
        process).  Unfinished jobs are never dropped; their count is already
        bounded by the admission queue.  A ``GET /v1/jobs/<id>`` for an
        evicted job answers 404, the standard contract of a
        retention-bounded job store.
        """
        with self._jobs_lock:
            self._jobs[job.id] = job
            overflow = len(self._jobs) - self._max_tracked_jobs
            if overflow > 0:
                # dicts iterate in insertion order: oldest first.
                evictable = [job_id for job_id, tracked in self._jobs.items()
                             if tracked.done()]
                for job_id in evictable[:overflow]:
                    del self._jobs[job_id]

    def find_job(self, job_id: int) -> Job | None:
        """The tracked job of ``job_id``, or ``None``."""
        with self._jobs_lock:
            return self._jobs.get(job_id)

    # -- lifecycle -----------------------------------------------------------
    def _bind(self) -> _HTTPServer:
        if self._httpd is None:
            self._httpd = _HTTPServer(self._requested_address, self)
        return self._httpd

    @property
    def port(self) -> int:
        """The bound port (binds lazily, resolving an ephemeral request)."""
        return self._bind().server_address[1]

    @property
    def url(self) -> str:
        """Base URL clients should talk to."""
        host = self._requested_address[0]
        return f"http://{host}:{self.port}"

    def start(self) -> "SolveHTTPServer":
        """Bind and serve from a daemon thread; returns ``self``."""
        httpd = self._bind()
        if self._thread is None or not self._thread.is_alive():
            self._thread = threading.Thread(
                target=httpd.serve_forever, name="solve-http-server",
                kwargs={"poll_interval": 0.05}, daemon=True)
            self._thread.start()
        _LOG.info("serving HTTP on %s", self.url)
        return self

    def serve_forever(self) -> None:
        """Bind and serve in the calling thread until :meth:`shutdown`."""
        httpd = self._bind()
        _LOG.info("serving HTTP on %s", self.url)
        try:
            httpd.serve_forever(poll_interval=0.05)
        finally:
            self._close_http()
            if self._owns_solve_server:
                self.solve_server.shutdown()

    def _close_http(self) -> None:
        if self._httpd is not None:
            self._httpd.server_close()
            self._httpd = None

    def shutdown(self) -> None:
        """Stop accepting connections, then drain the owned solve server.

        Only valid from a thread other than the one inside
        :meth:`serve_forever` (the stdlib restriction); the CLI's blocking
        mode instead interrupts ``serve_forever`` and relies on its
        ``finally`` clause for the same cleanup.
        """
        thread = self._thread
        if self._httpd is not None and thread is not None and thread.is_alive():
            self._httpd.shutdown()
        if thread is not None:
            thread.join(timeout=5.0)
        self._thread = None
        self._close_http()
        if self._owns_solve_server:
            self.solve_server.shutdown()

    def __enter__(self) -> "SolveHTTPServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
