"""Fingerprint-batched execution of admitted solve jobs.

The economics of the serving layer: concurrent requests over the *same*
matrix should pay for the expensive per-matrix work — preconditioner
assembly, MCMC transition tables — exactly once.  The scheduler therefore
groups the jobs of a batch by ``(matrix fingerprint, requested solver,
requested preconditioner, rtol, maxiter)``:

* one **policy decision** per group (see
  :class:`~repro.server.policy.PreconditionerPolicy`),
* one **preconditioner build** per group, shared process-wide through the
  :class:`~repro.service.cache.ArtifactCache` under
  :meth:`PolicyDecision.cache_key` — a later batch (or a synchronous call)
  over the same matrix is a cache hit, not a rebuild,
* one **multi-rhs solve** (:func:`repro.krylov.solve_many`) over the group's
  stacked right-hand sides.

Groups run through a :class:`repro.parallel.Executor` via
:meth:`~repro.parallel.executor.Executor.run_settled`, so one group's failure
surfaces on its own jobs while every other group completes.

Determinism
-----------
Every response is a deterministic function of its request alone: the policy
decides from a store snapshot, shared builds are seeded from the matrix
fingerprint (never from request seeds or arrival order), and — in the
default ``batch_mode="loop"`` — the multi-rhs solve is arithmetically
identical to independent single-rhs solves.  Serving a seeded request stream
synchronously or through the queue therefore yields bit-identical solutions.

``batch_mode="block"``/``"auto"`` opt a group into the block-Krylov path
(:mod:`repro.krylov.block`): one shared subspace for the whole batch, far
fewer total matvecs, answers that agree with the loop path to the solve
tolerance but depend on which requests were batched together.  The mode
actually used is recorded on every response (``batch_mode`` provenance) and
in the ``solve.block_used`` / ``solve.deflated_columns`` /
``solve.matvecs_total`` telemetry.

When an :class:`~repro.service.store.ObservationStore` is attached, MCMC
solves additionally measure the unpreconditioned baseline (cached per
``(fingerprint, solver, regime)``) and persist a
:class:`~repro.core.evaluation.PerformanceRecord` — online traffic keeps
making the tuning layer's future recommendations cheaper.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.api.schemas import PolicyProvenance, SolveResponseV1
from repro.core.evaluation import (
    PerformanceRecord,
    SolverSettings,
    measurement_regime,
)
from repro.exceptions import ParameterError, PreconditionerError
from repro.krylov.block import BLOCK_SOLVERS, block_summary, total_matvecs
from repro.krylov.solve import BATCH_MODES, solve, solve_many
from repro.logging_utils import get_logger
from repro.matrices.features import feature_vector
from repro.matrices.registry import get_matrix
from repro.mcmc.preconditioner import MCMCPreconditioner
from repro.mcmc.walks import TransitionTable
from repro.obs.phases import record_phases
from repro.obs.trace import NULL_TRACER
from repro.parallel.executor import Executor, SerialExecutor
from repro.precond.factory import make_preconditioner
from repro.server.policy import PolicyDecision, PreconditionerPolicy
from repro.server.queue import Job
from repro.server.telemetry import MetricsRegistry
from repro.service.cache import ArtifactCache, transition_table_key
from repro.service.store import ObservationStore
from repro.sparse.csr import validate_square
from repro.sparse.fingerprint import matrix_fingerprint
from repro.sparse.splitting import jacobi_splitting

__all__ = ["SolveResponse", "Scheduler", "end_job_trace"]

_LOG = get_logger("server.scheduler")


def end_job_trace(tracer, job: Job, **attributes) -> None:
    """Close a job's request root span exactly once (no-op when untraced).

    The root span is detached from the job before ending so the scheduler's
    completion path and the server's failure-fallback path cannot both
    record it.
    """
    root = job.root_span
    if root is None:
        return
    job.root_span = None
    tracer.end(root, **attributes)


#: Deprecated alias of :class:`repro.api.schemas.SolveResponseV1` — the
#: response schema now lives in the transport-agnostic :mod:`repro.api`
#: package; import it from there in new code.
SolveResponse = SolveResponseV1


@dataclass
class _Group:
    """Jobs sharing (fingerprint, solver, preconditioner, rtol, maxiter,
    batch mode)."""

    fingerprint: str
    matrix: sp.csr_matrix
    name: str
    solver: str | None
    preconditioner: str | None
    rtol: float
    maxiter: int
    batch_mode: str = "loop"
    jobs: list[Job] = field(default_factory=list)


def _fingerprint_seed(fingerprint: str) -> int:
    """Deterministic build seed derived from the matrix identity.

    Shared artifacts must not be seeded from request seeds: two requests
    batched together share one build, so the build may depend only on the
    matrix — this is what keeps batched and synchronous serving
    bit-identical.
    """
    return int(fingerprint[:8], 16) % (2 ** 31 - 1)


class Scheduler:
    """Executes job batches: group, decide, build once, multi-rhs solve.

    Parameters
    ----------
    policy:
        The preconditioner policy (auto-selection + provenance).
    cache:
        Shared artifact cache for preconditioners, transition tables,
        resolved registry matrices and baseline iteration counts.
    executor:
        Runs independent groups concurrently; serial when ``None``.
    telemetry:
        Metrics registry fed by every execution.
    store:
        Optional observation store: MCMC solves are measured against the
        cached unpreconditioned baseline and persisted.
    batch_mode:
        Default multi-rhs execution mode of a group
        (:func:`repro.krylov.solve_many`'s ``mode``), overridable per
        request via :attr:`SolveRequestV1.batch_mode`.  ``"loop"`` (the
        default) keeps batched serving bit-identical to synchronous
        serving; ``"block"``/``"auto"`` share one Krylov subspace across a
        group — far fewer matvecs, answers identical to the solve
        tolerance rather than to the bit.  Requests demanding block mode
        for a solver without a block implementation are served through the
        loop path (recorded in the ``solve.block_unsupported`` counter).
    matrix_bank:
        Optional :class:`~repro.learn.trainer.MatrixBank` (anything with a
        ``put(name, matrix)``): every matrix that produces a store record
        is banked under the record's ``matrix_name`` so the online trainer
        can rebuild graphs for non-registry matrices.  ``None`` when
        learning is off — the scheduler never imports :mod:`repro.learn`.
    shadow_eval:
        When ``True`` (the ``--learn`` serving mode), every loop-served
        solve feeds the ``policy.regret`` histogram, labelled by decision
        origin: the iteration excess over the best count any policy stage
        has achieved for the same ``(fingerprint, solver, rtol, maxiter)``
        slot.  A surrogate that beats the incumbent records zero regret
        *and* lowers the bar for the rule/warm-start stages it shadows.
    """

    def __init__(self, *, policy: PreconditionerPolicy, cache: ArtifactCache,
                 executor: Executor | None = None,
                 telemetry: MetricsRegistry | None = None,
                 store: ObservationStore | None = None,
                 record_observations: bool = True,
                 batch_mode: str = "loop",
                 tracer=None,
                 matrix_bank=None,
                 shadow_eval: bool = False) -> None:
        self.policy = policy
        self.cache = cache
        self.executor = executor if executor is not None else SerialExecutor()
        self.telemetry = telemetry if telemetry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.store = store
        self.record_observations = record_observations
        if batch_mode not in BATCH_MODES:
            raise ParameterError(
                f"unknown batch_mode {batch_mode!r}; "
                f"expected one of {BATCH_MODES}")
        self.batch_mode = batch_mode
        self.matrix_bank = matrix_bank
        self.shadow_eval = bool(shadow_eval)
        self._registered_fingerprints: set[str] = set()
        self._incumbent_iterations: dict[tuple, int] = {}
        self._shadow_lock = threading.Lock()

    # -- batch execution ----------------------------------------------------
    def execute(self, jobs: list[Job]) -> None:
        """Run a batch of jobs to completion, finishing every job.

        Jobs whose group fails (unresolvable matrix, solver error) finish
        with that exception; the remaining groups are unaffected.
        """
        if not jobs:
            return
        groups = self._group(jobs)
        self.telemetry.histogram("scheduler.groups_per_batch").observe(len(groups))
        settled = self.executor.run_settled(self._run_group, groups)
        for group, (_, error) in zip(groups, settled):
            if error is not None:
                _LOG.warning("group %s failed: %s", group.fingerprint[:8], error)
                for job in group.jobs:
                    if not job.done():
                        self.telemetry.counter("jobs_failed").add(1)
                        job._finish(error=error)
                    end_job_trace(self.tracer, job, outcome="error",
                                  error=str(error))

    def _group(self, jobs: list[Job]) -> list[_Group]:
        groups: dict[tuple, _Group] = {}
        for job in jobs:
            request = job.request
            try:
                matrix, name = self._resolve_matrix(request.matrix)
                fingerprint = self._fingerprint(matrix)
            except Exception as error:  # noqa: BLE001 - surfaced on the job
                self.telemetry.counter("jobs_failed").add(1)
                job._finish(error=error)
                end_job_trace(self.tracer, job, outcome="error",
                              error=str(error))
                continue
            batch_mode = (self.batch_mode if request.batch_mode is None
                          else str(request.batch_mode).strip().lower())
            key = (fingerprint, request.solver, request.preconditioner,
                   float(request.rtol), int(request.maxiter), batch_mode)
            if key not in groups:
                groups[key] = _Group(
                    fingerprint=fingerprint, matrix=matrix, name=name,
                    solver=request.solver,
                    preconditioner=request.preconditioner,
                    rtol=float(request.rtol), maxiter=int(request.maxiter),
                    batch_mode=batch_mode)
            groups[key].jobs.append(job)
        return list(groups.values())

    def _resolve_matrix(self, matrix: sp.spmatrix | str
                        ) -> tuple[sp.csr_matrix, str]:
        if isinstance(matrix, str):
            resolved = self.cache.get_or_build(
                ("registry_matrix", matrix), lambda: get_matrix(matrix))
            return resolved, matrix
        return validate_square(matrix), ""

    def _fingerprint(self, matrix: sp.csr_matrix) -> str:
        # id()-keyed memo would be unsound across gc; fingerprinting is one
        # pass over the non-zeros and stays far below a solve's cost.
        return matrix_fingerprint(matrix)

    # -- one group ----------------------------------------------------------
    def _run_group(self, group: _Group) -> None:
        tr = self.tracer
        start = time.perf_counter()
        # Group-shared spans (policy, preconditioner, solve) hang off the
        # first traced job's request root: a group exists because its jobs
        # share this work, so the leader's trace carries it once.  Each job
        # still gets its own queue-wait span under its own root.
        leader = next((job.root_span for job in group.jobs
                       if job.root_span is not None), None)
        if tr.enabled:
            for job in group.jobs:
                if (job.root_span is not None and job.submitted_at is not None
                        and job.started_at is not None):
                    tr.span_at("queue.wait", job.submitted_at, job.started_at,
                               parent=job.root_span, job_id=job.id)

        with tr.span("policy.decide", parent=leader,
                     fingerprint=group.fingerprint[:12]) as policy_span:
            decision = self.policy.decide(
                group.matrix, group.fingerprint,
                solver=group.solver, preconditioner=group.preconditioner)
            policy_span.set_attribute("family", decision.family)
            policy_span.set_attribute("solver", decision.solver)
            policy_span.set_attribute("origin", decision.origin)
            if decision.rule:
                policy_span.set_attribute("rule", decision.rule)
            if decision.neighbour_name is not None:
                policy_span.set_attribute("neighbour", decision.neighbour_name)
        preconditioner, built_family = self._preconditioner(
            group, decision, parent=leader)
        settings = SolverSettings(rtol=group.rtol, maxiter=group.maxiter,
                                  batch_mode=group.batch_mode)
        kwargs = settings.solver_kwargs(decision.solver, group.matrix.shape[0])

        n = group.matrix.shape[0]
        columns = [np.ones(n) if job.request.rhs is None
                   else np.asarray(job.request.rhs, dtype=np.float64).ravel()
                   for job in group.jobs]
        call_mode = settings.batch_mode
        if call_mode == "block" and decision.solver not in BLOCK_SOLVERS:
            # The policy (or the request) picked a solver without a block
            # implementation; serving must degrade to the loop path rather
            # than fail the whole group.
            self.telemetry.counter("solve.block_unsupported").add(1)
            call_mode = "loop"

        def run_solve():
            return solve_many(group.matrix, columns, solver=decision.solver,
                              preconditioner=preconditioner, mode=call_mode,
                              **kwargs)

        if tr.enabled:
            with tr.span("solve", parent=leader, solver=decision.solver,
                         mode=call_mode,
                         batch_size=len(group.jobs)) as solve_span:
                with record_phases() as recorder:
                    results = run_solve()
                # Per-phase wall time: on the span for this request's trace,
                # and aggregated per matrix fingerprint for fleet-level
                # "where does this matrix spend its time" queries.
                for phase, seconds in recorder.as_dict().items():
                    solve_span.set_attribute(f"phase.{phase}_ms",
                                             seconds * 1e3)
                    self.telemetry.histogram(
                        "solve.phase_ms", phase=phase,
                        fingerprint=group.fingerprint[:12]).observe(
                            seconds * 1e3)
        else:
            results = run_solve()
        elapsed_ms = (time.perf_counter() - start) * 1e3

        summary = block_summary(results)
        used_block = summary is not None
        batch_mode_used = "block" if used_block else "loop"
        if used_block:
            self.telemetry.counter("solve.block_used").add(1)
            self.telemetry.counter("solve.deflated_columns").add(
                summary.deflated_columns)
        self.telemetry.counter("solve.matvecs_total").add(
            total_matvecs(results))

        if self.shadow_eval and not used_block:
            # Block iteration counts are shared across the batch and not
            # comparable with single-rhs incumbents; only loop-served solves
            # feed the regret signal (mirrors the store-feedback gate below).
            self._record_regret(group, decision,
                                [result.iterations for result in results])

        provenance = PolicyProvenance.from_decision(decision, built_family)
        batch = len(group.jobs)
        self.telemetry.histogram("solve.batch_size").observe(batch)
        self.telemetry.counter("solve.completed", solver=decision.solver,
                               preconditioner=built_family,
                               batch_mode=batch_mode_used).add(batch)
        for job, column, result in zip(group.jobs, columns, results):
            response = SolveResponseV1(
                tag=job.request.tag,
                job_id=job.id,
                fingerprint=group.fingerprint,
                solution=result.solution,
                converged=result.converged,
                iterations=result.iterations,
                final_residual=result.final_residual,
                solver=decision.solver,
                provenance=provenance,
                batch_size=batch,
                batch_mode=batch_mode_used,
                trace_id=job.trace_id,
            )
            self.telemetry.counter("solves_total").add(1)
            if not result.converged:
                self.telemetry.counter("solves_not_converged").add(1)
            self.telemetry.histogram("solve.iterations").observe(result.iterations)
            # Per-fingerprint iteration counts: what block-auto width
            # selection and the surrogate-policy loop consume.
            self.telemetry.histogram(
                "solve.iterations", solver=decision.solver,
                fingerprint=group.fingerprint[:12]).observe(result.iterations)
            # Every caller in the group waited for the whole group, so the
            # honest per-request latency is the full elapsed time; the
            # batching win shows up in the amortised-cost histogram.
            self.telemetry.histogram("solve.latency_ms").observe(elapsed_ms)
            self.telemetry.histogram(
                "solve.amortised_cost_ms").observe(elapsed_ms / batch)
            if not used_block:
                # Block iteration counts are shared across the batch and not
                # comparable with the single-rhs baseline the performance
                # metric divides by; only loop-served solves feed the store.
                self._record_observation(group, decision, built_family,
                                         settings, column, result.iterations)
            job.finished_at = time.perf_counter()
            job._finish(result=response)
            end_job_trace(tr, job, outcome="ok", solver=decision.solver,
                          converged=bool(result.converged),
                          iterations=int(result.iterations))

    # -- preconditioner assembly (shared through the cache) ------------------
    def _preconditioner(self, group: _Group, decision: PolicyDecision,
                        parent=None):
        """The built preconditioner for this decision, building at most once.

        The cache entry stores ``(preconditioner, built_family)``;
        ``built_family`` differs from ``decision.family`` when construction
        broke down and the deterministic identity fallback was used.
        """
        self.telemetry.counter("precond.requests").add(1)
        tr = self.tracer
        build_ran = []

        def build():
            build_ran.append(True)
            self.telemetry.counter("precond.builds").add(1)
            # Child of the enclosing "preconditioner" span via the ambient
            # context (get_or_build runs the builder in the calling thread).
            with tr.span("precond.build", family=decision.family):
                try:
                    return self._build(group, decision), decision.family
                except PreconditionerError as error:
                    # Deterministic fallback: same decision -> same failure ->
                    # same identity operator, so cached and fresh paths agree.
                    self.telemetry.counter("precond.fallbacks").add(1)
                    _LOG.warning("%s build failed for %s (%s); "
                                 "falling back to identity",
                                 decision.family, group.fingerprint[:8], error)
                    return None, "none"

        with tr.span("preconditioner", parent=parent,
                     family=decision.family,
                     fingerprint=group.fingerprint[:12]) as span:
            preconditioner, built_family = self.cache.get_or_build(
                decision.cache_key(group.fingerprint), build)
            cache_hit = not build_ran
            span.set_attribute("cache_hit", cache_hit)
            span.set_attribute("built_family", built_family)
        self.telemetry.counter(
            "precond.cache", outcome="hit" if cache_hit else "miss").add(1)
        return preconditioner, built_family

    def _build(self, group: _Group, decision: PolicyDecision):
        if decision.family == "mcmc":
            parameters = decision.mcmc_parameters()
            table = self.cache.get_or_build(
                transition_table_key(group.fingerprint, parameters.alpha),
                lambda: TransitionTable(
                    jacobi_splitting(group.matrix,
                                     parameters.alpha).iteration_matrix))
            return MCMCPreconditioner(
                group.matrix, parameters,
                seed=_fingerprint_seed(group.fingerprint),
                transition_table=table)
        return make_preconditioner(decision.family, group.matrix,
                                   **dict(decision.params))

    # -- shadow evaluation (online-learning mode) ----------------------------
    def _record_regret(self, group: _Group, decision: PolicyDecision,
                       iteration_counts: list[int]) -> None:
        """Feed ``policy.regret{origin=...}`` against the running incumbent.

        The incumbent is the best iteration count *any* decision origin has
        achieved on this ``(fingerprint, solver, rtol, maxiter)`` slot since
        the server started; regret is the (clamped-at-zero) excess over it.
        A consistently-zero surrogate series against a positive rule series
        is the online win signal the A/B benchmark asserts offline.
        """
        key = (group.fingerprint, decision.solver, group.rtol, group.maxiter)
        with self._shadow_lock:
            incumbent = self._incumbent_iterations.get(key)
            for iterations in iteration_counts:
                iterations = int(iterations)
                regret = (0 if incumbent is None
                          else max(0, iterations - incumbent))
                incumbent = (iterations if incumbent is None
                             else min(incumbent, iterations))
                self.telemetry.histogram(
                    "policy.regret", origin=decision.origin).observe(regret)
            self._incumbent_iterations[key] = incumbent

    # -- store feedback ------------------------------------------------------
    def _record_observation(self, group: _Group, decision: PolicyDecision,
                            built_family: str, settings: SolverSettings,
                            rhs: np.ndarray, iterations: int) -> None:
        """Persist an MCMC solve as a performance record (store feedback).

        Only genuine MCMC builds are recorded — they are the observations
        the tuning layer consumes.  The unpreconditioned baseline is cached
        per ``(fingerprint, solver, regime)`` so a traffic wave pays for it
        once.
        """
        if (self.store is None or not self.record_observations
                or built_family != "mcmc"):
            return
        regime = measurement_regime(settings, rhs)
        baseline = self.cache.get_or_build(
            ("server_baseline", group.fingerprint, decision.solver, regime),
            lambda: self._baseline(group, decision.solver, settings, rhs))
        if group.fingerprint not in self._registered_fingerprints:
            self.store.register_matrix(group.fingerprint,
                                       group.name or group.fingerprint[:12],
                                       feature_vector(group.matrix))
            self._registered_fingerprints.add(group.fingerprint)
        if self.matrix_bank is not None:
            # Bank under the record's matrix_name so the trainer can resolve
            # graphs for matrices that are not in the registry.
            self.matrix_bank.put(group.name or group.fingerprint[:12],
                                 group.matrix)
        iterations = max(int(iterations), 1)
        record = PerformanceRecord(
            parameters=decision.mcmc_parameters(),
            matrix_name=group.name or group.fingerprint[:12],
            baseline_iterations=baseline,
            preconditioned_iterations=[iterations],
            y_values=[iterations / baseline],
        )
        if self.store.put_record(group.fingerprint, record,
                                 context=f"{regime}:server"):
            self.telemetry.counter("store.records_written").add(1)

    def _baseline(self, group: _Group, solver: str,
                  settings: SolverSettings, rhs: np.ndarray) -> int:
        kwargs = settings.solver_kwargs(solver, group.matrix.shape[0])
        result = solve(group.matrix, rhs, solver=solver, **kwargs)
        iterations = result.iterations if result.converged else settings.maxiter
        return max(int(iterations), 1)
