"""Automatic preconditioner selection for the solve server.

Callers of the server hand over a matrix and (optionally) nothing else; the
policy decides which preconditioner family to build, with which parameters,
and which Krylov solver to drive — recording *why* on every decision so each
response carries full provenance.

Decision ladder (first match wins):

1. **Explicit** — the request named a family (and/or solver); honour it.
2. **Stored reuse** — the :class:`~repro.service.store.ObservationStore`
   holds tuned MCMC observations for this exact matrix fingerprint; reuse
   the best-performing parameter vector (the online analogue of the
   :class:`~repro.service.tuner_service.TuningService`'s exact-reuse tier).
3. **Surrogate** — an online-trained surrogate model
   (:class:`~repro.learn.policy.SurrogatePolicy`, opt-in via ``--learn``)
   proposes MCMC parameters by maximising Expected Improvement; decisions
   carry the model version in their provenance.  The stage declines (model
   not ready, low confidence, proposal error) by returning ``None`` and the
   ladder continues unchanged.
4. **Warm start** — the store has never seen this matrix but knows others;
   the nearest registered neighbour in standardised
   :func:`~repro.matrices.features.feature_vector` space donates its best
   parameters.
5. **Rule table** — cold start from
   :func:`~repro.matrices.features.structural_flags`:

   ========================  ==========================  =========
   structure                 family                      solver
   ========================  ==========================  =========
   SPD-like                  IC(0)                       CG
   strongly diag. dominant   Jacobi                      GMRES
   diag. dominant            Neumann series              GMRES
   usable diagonal           ILU(0)                      GMRES
   weak diagonal             MCMC (paper defaults)       GMRES
   zero/partial diagonal     SPAI                        GMRES
   ========================  ==========================  =========

Determinism
-----------
The policy works from a **snapshot** of the store taken at construction (or
at an explicit :meth:`refresh`).  Records written *while serving* therefore
never change in-flight decisions — this is what makes a seeded request
stream produce bit-identical answers whether requests are served one by one
or batched by the scheduler, regardless of completion order.  Long-running
servers call :meth:`refresh` between traffic waves to pick up what serving
has learned.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.logging_utils import get_logger
from repro.matrices.features import (
    feature_vector,
    nearest_feature_neighbour,
    structural_flags,
)
from repro.mcmc.parameters import DEFAULT_BOUNDS, MCMCParameters, ParameterBounds
from repro.api.errors import AdmissionError, REJECT_INVALID
from repro.precond.factory import KNOWN_FAMILIES
from repro.service.store import ObservationStore

__all__ = [
    "PolicyDecision",
    "PreconditionerPolicy",
    "ORIGIN_EXPLICIT",
    "ORIGIN_STORED",
    "ORIGIN_SURROGATE",
    "ORIGIN_WARM_START",
    "ORIGIN_RULE",
]

_LOG = get_logger("server.policy")

ORIGIN_EXPLICIT = "explicit"
ORIGIN_STORED = "stored"
ORIGIN_SURROGATE = "surrogate"
ORIGIN_WARM_START = "warm_start"
ORIGIN_RULE = "rule"

#: Dominance (median |a_ii| / off-diagonal row mass) above which plain
#: Jacobi scaling is already an excellent preconditioner.
STRONG_DOMINANCE = 2.0

#: Dominance below which ILU(0) pivots are considered too fragile and the
#: policy prefers the stochastic (MCMC) inverse instead — the regime the
#: paper positions MCMCMI for.
FRAGILE_DOMINANCE = 0.5

#: Cold-start MCMC parameters: the centre of the paper's training grid.
DEFAULT_MCMC_PARAMETERS = MCMCParameters(alpha=2.0, eps=0.25, delta=0.25)


@dataclass(frozen=True)
class PolicyDecision:
    """One preconditioning decision, hashable so it can key the artifact cache.

    ``params`` is a sorted tuple of ``(name, value)`` pairs — the exact
    keyword arguments the scheduler passes to
    :func:`repro.precond.factory.make_preconditioner` (for the ``mcmc``
    family: ``alpha``, ``eps``, ``delta``, turned back into
    :class:`MCMCParameters` at build time).
    """

    family: str
    solver: str
    params: tuple[tuple[str, float | int | str], ...]
    origin: str
    rule: str = ""
    neighbour_name: str | None = None
    neighbour_distance: float | None = None
    model_version: str | None = None

    def cache_key(self, fingerprint: str) -> tuple:
        """Key of the built preconditioner in the shared artifact cache.

        Deliberately excludes provenance (origin / rule / neighbour): two
        decisions that build the same operator share one artifact.
        """
        return ("server_precond", fingerprint, self.family, self.params)

    def mcmc_parameters(self) -> MCMCParameters:
        """The ``params`` tuple as :class:`MCMCParameters` (mcmc family only)."""
        values = dict(self.params)
        return MCMCParameters(alpha=float(values["alpha"]),
                              eps=float(values["eps"]),
                              delta=float(values["delta"]),
                              solver=self.solver)

    def provenance(self) -> dict:
        """JSON-serialisable description recorded on every response."""
        info: dict = {
            "family": self.family,
            "solver": self.solver,
            "params": {name: value for name, value in self.params},
            "origin": self.origin,
        }
        if self.rule:
            info["rule"] = self.rule
        if self.neighbour_name is not None:
            info["neighbour"] = {"name": self.neighbour_name,
                                 "distance": self.neighbour_distance}
        if self.model_version is not None:
            info["model_version"] = self.model_version
        return info


def _mcmc_params_tuple(parameters: MCMCParameters
                       ) -> tuple[tuple[str, float], ...]:
    return (("alpha", float(parameters.alpha)),
            ("delta", float(parameters.delta)),
            ("eps", float(parameters.eps)))


class PreconditionerPolicy:
    """Chooses a preconditioner family + parameters + solver per matrix.

    Parameters
    ----------
    store:
        Optional observation store consulted (via a snapshot, see the module
        docstring) for stored-reuse and warm-start decisions.
    bounds:
        Parameter box warm-started MCMC parameters are clipped into.
    surrogate:
        Optional :class:`~repro.learn.policy.SurrogatePolicy` (any object
        with a compatible ``propose``) consulted between stored reuse and
        warm start.  ``None`` (the default) keeps the ladder — and serving —
        exactly as without online learning.
    """

    def __init__(self, store: ObservationStore | None = None, *,
                 bounds: ParameterBounds = DEFAULT_BOUNDS,
                 surrogate=None) -> None:
        self.store = store
        self.bounds = bounds
        self.surrogate = surrogate
        self._best_by_fingerprint: dict[str, MCMCParameters] = {}
        self._neighbour_pool: list[tuple[str, str, np.ndarray]] = []
        self._name_by_fingerprint: dict[str, str] = {}
        self.refresh()

    def refresh(self) -> None:
        """Re-snapshot the store (new records become visible to decisions)."""
        best: dict[str, MCMCParameters] = {}
        pool: list[tuple[str, str, np.ndarray]] = []
        names: dict[str, str] = {}
        if self.store is not None:
            self.store.reload()
            for fingerprint in self.store.fingerprints():
                records = self.store.query(fingerprint=fingerprint)
                if not records:
                    continue
                winner = min(records, key=lambda r: r.to_record().y_mean)
                best[fingerprint] = winner.parameters
            for fingerprint, entry in self.store.matrix_entries().items():
                names[fingerprint] = entry.name
                if fingerprint in best and entry.features is not None:
                    pool.append((fingerprint, entry.name,
                                 np.asarray(entry.features, dtype=np.float64)))
        self._best_by_fingerprint = best
        self._neighbour_pool = pool
        self._name_by_fingerprint = names

    # -- the decision ladder ------------------------------------------------
    def decide(self, matrix: sp.spmatrix, fingerprint: str, *,
               solver: str | None = None,
               preconditioner: str | None = None) -> PolicyDecision:
        """Decide family / parameters / solver for one matrix.

        ``solver`` and ``preconditioner`` are the request's explicit choices
        (``None`` or ``"auto"`` delegate to the policy).
        """
        family = None if preconditioner in (None, "auto") else \
            preconditioner.strip().lower()
        if family is not None and family not in KNOWN_FAMILIES:
            raise AdmissionError(
                REJECT_INVALID,
                f"unknown preconditioner family {preconditioner!r}; "
                f"expected one of {KNOWN_FAMILIES}")

        if family is not None:
            params: tuple = ()
            if family == "mcmc":
                stored = self._best_by_fingerprint.get(fingerprint)
                params = _mcmc_params_tuple(stored if stored is not None
                                            else DEFAULT_MCMC_PARAMETERS)
            return PolicyDecision(
                family=family, solver=solver or "gmres", params=params,
                origin=ORIGIN_EXPLICIT)

        stored = self._best_by_fingerprint.get(fingerprint)
        if stored is not None:
            return PolicyDecision(
                family="mcmc",
                solver=solver or stored.solver,
                params=_mcmc_params_tuple(stored),
                origin=ORIGIN_STORED)

        if self.surrogate is not None:
            proposal = self.surrogate.propose(
                matrix, fingerprint, solver=solver,
                matrix_name=self._name_by_fingerprint.get(fingerprint))
            if proposal is not None:
                proposed = proposal.parameters.clipped(self.bounds)
                return PolicyDecision(
                    family="mcmc",
                    solver=solver or proposed.solver,
                    params=_mcmc_params_tuple(proposed),
                    origin=ORIGIN_SURROGATE,
                    model_version=proposal.model_version)

        neighbour = self._nearest_neighbour(matrix, fingerprint)
        if neighbour is not None:
            neighbour_fingerprint, name, distance = neighbour
            donated = self._best_by_fingerprint[neighbour_fingerprint]
            donated = donated.clipped(self.bounds)
            return PolicyDecision(
                family="mcmc",
                solver=solver or donated.solver,
                params=_mcmc_params_tuple(donated),
                origin=ORIGIN_WARM_START,
                neighbour_name=name,
                neighbour_distance=distance)

        return self._rule_decision(matrix, solver)

    def _rule_decision(self, matrix: sp.spmatrix,
                       solver: str | None) -> PolicyDecision:
        flags = structural_flags(matrix)
        if flags["spd_like"]:
            return PolicyDecision(
                family="ic0", solver=solver or "cg", params=(),
                origin=ORIGIN_RULE, rule="spd")
        if flags["diag_dominant"]:
            if flags["dominance"] >= STRONG_DOMINANCE:
                return PolicyDecision(
                    family="jacobi", solver=solver or "gmres", params=(),
                    origin=ORIGIN_RULE, rule="strong_diagonal_dominance")
            return PolicyDecision(
                family="neumann", solver=solver or "gmres",
                params=(("terms", 4),),
                origin=ORIGIN_RULE, rule="diagonal_dominance")
        if flags["nonzero_diagonal"]:
            if flags["dominance"] >= FRAGILE_DOMINANCE:
                return PolicyDecision(
                    family="ilu0", solver=solver or "gmres", params=(),
                    origin=ORIGIN_RULE, rule="general")
            return PolicyDecision(
                family="mcmc", solver=solver or "gmres",
                params=_mcmc_params_tuple(DEFAULT_MCMC_PARAMETERS),
                origin=ORIGIN_RULE, rule="fragile_pivots")
        # No usable diagonal: every splitting-based family is out; the
        # pattern-based sparse approximate inverse still applies.
        return PolicyDecision(
            family="spai", solver=solver or "gmres", params=(),
            origin=ORIGIN_RULE, rule="zero_diagonal")

    # -- warm-start neighbour search ----------------------------------------
    def _nearest_neighbour(self, matrix: sp.spmatrix, fingerprint: str
                           ) -> tuple[str, str, float] | None:
        pool = [(fp, name, features)
                for fp, name, features in self._neighbour_pool
                if fp != fingerprint]
        found = nearest_feature_neighbour(
            [features for _, _, features in pool], feature_vector(matrix))
        if found is None:
            return None
        best, distance = found
        fp, name, _ = pool[best]
        _LOG.debug("warm start for %s from neighbour %s (distance %.3f)",
                   fingerprint[:8], name, distance)
        return fp, name, distance
