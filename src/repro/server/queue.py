"""Admission-controlled job queue of the solve server.

The front door of the serving layer: a :class:`SolveRequest` is validated and
either *admitted* — wrapped in a :class:`Job` the caller can wait on — or
*rejected* with an explicit reason (:class:`AdmissionError`).  Rejection
instead of unbounded buffering is the backpressure mechanism: a server under
heavy traffic sheds load at the door rather than growing its queue until
latency is unbounded.

Semantics
---------
* **Bounded depth** — at most ``max_depth`` jobs may be pending; further
  submissions are rejected with reason ``"queue_full"``.
* **Priorities** — higher ``priority`` pops first; ties preserve submission
  order (FIFO within a priority class), so a seeded request stream is
  processed in a deterministic order.
* **Graceful drain** — :meth:`JobQueue.drain` temporarily closes admission,
  waits until every admitted job has finished, then re-opens; :meth:`close`
  shuts the door permanently (reason ``"closed"``).

The queue itself never executes anything: the scheduler pops batches with
:meth:`pop_batch` and reports completion through :meth:`finish`.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from typing import Any

from repro.api.errors import (
    AdmissionError,
    ErrorEnvelope,
    REJECT_CLOSED,
    REJECT_DRAINING,
    REJECT_INVALID,
    REJECT_QUEUE_FULL,
)
from repro.api.schemas import (
    JobStatusV1,
    SolveRequestV1,
    SolveResponseV1,
    validate_request,
)
from repro.logging_utils import get_logger

__all__ = [
    "SolveRequest",
    "Job",
    "JobQueue",
    "job_status",
    "AdmissionError",
    "REJECT_QUEUE_FULL",
    "REJECT_CLOSED",
    "REJECT_DRAINING",
    "REJECT_INVALID",
]

_LOG = get_logger("server.queue")

#: Deprecated alias of :class:`repro.api.schemas.SolveRequestV1` — the
#: request schema now lives in the transport-agnostic :mod:`repro.api`
#: package; import it from there in new code.
SolveRequest = SolveRequestV1


class Job:
    """An admitted request: a waitable handle with result / exception.

    ``submitted_at`` / ``started_at`` / ``finished_at`` are
    ``time.perf_counter()`` stamps (admission, pop by the scheduler,
    completion) — the queue-wait and end-to-end spans of a traced request
    are reconstructed from them.  ``trace_id`` / ``root_span`` carry the
    request's trace across the submit → worker thread boundary; both stay
    ``None`` when tracing is off.
    """

    __slots__ = ("id", "request", "state", "_event", "_result", "_error",
                 "submitted_at", "started_at", "finished_at",
                 "trace_id", "root_span")

    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"

    def __init__(self, job_id: int, request: SolveRequest) -> None:
        self.id = job_id
        self.request = request
        self.state = Job.PENDING
        self._event = threading.Event()
        self._result: Any = None
        self._error: Exception | None = None
        self.submitted_at: float | None = None
        self.started_at: float | None = None
        self.finished_at: float | None = None
        self.trace_id: str | None = None
        self.root_span = None

    def done(self) -> bool:
        """Whether the job has finished (successfully or not)."""
        return self._event.is_set()

    def exception(self) -> Exception | None:
        """The failure, if any (``None`` while pending/running or on success)."""
        return self._error

    def result(self, timeout: float | None = None):
        """Block until the job finishes and return its result.

        Raises the job's exception when it failed, and :class:`TimeoutError`
        when ``timeout`` elapses first.
        """
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"job {self.id} did not finish within {timeout} s")
        if self._error is not None:
            raise self._error
        return self._result

    def _finish(self, result: Any = None,
                error: Exception | None = None) -> None:
        self._result = result
        self._error = error
        self.state = Job.FAILED if error is not None else Job.DONE
        self._event.set()


def job_status(job: Job, *, response_transform=None) -> JobStatusV1:
    """Render a job as its wire status record — shared by every transport.

    The single source of the state → (response | error-envelope) mapping,
    used by both the HTTP adapter (``GET /v1/jobs/<id>``) and
    :meth:`repro.client.InProcessClient.job`, so the two transports cannot
    drift apart.  ``response_transform`` post-processes a finished response
    (the in-process client's wire-fidelity round-trip).
    """
    response = None
    error = None
    if job.done():
        failure = job.exception()
        if failure is not None:
            error = ErrorEnvelope.from_exception(failure)
        else:
            result = job.result(timeout=0)
            if isinstance(result, SolveResponseV1):
                response = (result if response_transform is None
                            else response_transform(result))
    return JobStatusV1(job_id=job.id, state=job.state,
                       response=response, error=error)


class JobQueue:
    """Bounded priority queue with admission control and graceful drain.

    Parameters
    ----------
    max_depth:
        Maximum number of *pending* jobs (running jobs do not count against
        the bound: they already hold their resources).
    """

    def __init__(self, max_depth: int = 256) -> None:
        if max_depth < 1:
            raise AdmissionError(
                REJECT_INVALID, f"max_depth must be >= 1, got {max_depth}")
        self._max_depth = int(max_depth)
        self._heap: list[tuple[int, int, Job]] = []
        self._sequence = itertools.count()
        self._inflight = 0
        self._admitted = 0
        self._closed = False
        self._draining = False
        self._condition = threading.Condition()

    # -- introspection ------------------------------------------------------
    @property
    def max_depth(self) -> int:
        """Pending-depth bound."""
        return self._max_depth

    @property
    def depth(self) -> int:
        """Number of pending (not yet popped) jobs."""
        with self._condition:
            return len(self._heap)

    @property
    def inflight(self) -> int:
        """Number of popped jobs not yet reported finished."""
        with self._condition:
            return self._inflight

    @property
    def admitted(self) -> int:
        """Total jobs admitted over the queue's lifetime."""
        with self._condition:
            return self._admitted

    @property
    def closed(self) -> bool:
        """Whether admission has been shut permanently."""
        with self._condition:
            return self._closed

    def idle(self) -> bool:
        """True when nothing is pending and nothing is in flight."""
        with self._condition:
            return not self._heap and self._inflight == 0

    # -- admission ----------------------------------------------------------
    def submit(self, request: SolveRequest, *, trace_id: str | None = None,
               root_span=None) -> Job:
        """Admit ``request`` or raise :class:`AdmissionError` with a reason.

        Validation happens here, at the API boundary (shared with the HTTP
        adapter through :func:`repro.api.schemas.validate_request`):
        malformed requests — non-finite rhs entries, shape mismatches,
        unknown solver/preconditioner names — are rejected with the
        structured ``invalid`` reason instead of crashing a solver later.

        ``trace_id`` / ``root_span`` attach the submitter's trace to the
        job *before* it becomes poppable — the scheduler thread may pick
        the job up the instant the lock is released, so stamping them
        after submit would race.
        """
        validate_request(request)
        with self._condition:
            if self._closed:
                raise AdmissionError(REJECT_CLOSED, "queue is closed")
            if self._draining:
                raise AdmissionError(REJECT_DRAINING, "queue is draining")
            if len(self._heap) >= self._max_depth:
                raise AdmissionError(
                    REJECT_QUEUE_FULL,
                    f"queue depth {len(self._heap)} at its bound "
                    f"{self._max_depth}")
            sequence = next(self._sequence)
            job = Job(sequence, request)
            job.submitted_at = time.perf_counter()
            job.trace_id = trace_id
            job.root_span = root_span
            # Min-heap: negate priority so higher priorities pop first; the
            # sequence number breaks ties FIFO and makes entries totally
            # ordered (Jobs themselves are not comparable).
            heapq.heappush(self._heap, (-request.priority, sequence, job))
            self._admitted += 1
            self._condition.notify_all()
            return job

    # -- scheduler side -----------------------------------------------------
    def pop_batch(self, max_jobs: int | None = None,
                  timeout: float | None = None) -> list[Job]:
        """Pop up to ``max_jobs`` pending jobs in priority order.

        Blocks up to ``timeout`` seconds for at least one job (no blocking
        when ``timeout`` is ``None`` or 0).  Popped jobs are marked RUNNING
        and count as in-flight until :meth:`finish` is called for them.
        """
        with self._condition:
            if not self._heap and timeout:
                self._condition.wait_for(lambda: bool(self._heap) or self._closed,
                                         timeout=timeout)
            batch: list[Job] = []
            limit = len(self._heap) if max_jobs is None else max_jobs
            while self._heap and len(batch) < limit:
                _, _, job = heapq.heappop(self._heap)
                job.state = Job.RUNNING
                job.started_at = time.perf_counter()
                batch.append(job)
            self._inflight += len(batch)
            if batch:
                self._condition.notify_all()
            return batch

    def finish(self, job: Job, result: Any = None,
               error: Exception | None = None) -> None:
        """Report a popped job finished, waking any :meth:`drain` waiters.

        When the job was already completed by the executor (the scheduler
        sets results directly), this only performs the in-flight accounting.
        """
        if not job.done():
            job._finish(result, error)
        with self._condition:
            self._inflight -= 1
            self._condition.notify_all()

    # -- lifecycle ----------------------------------------------------------
    def drain(self, timeout: float | None = None) -> bool:
        """Gracefully drain: reject new work until everything admitted is done.

        Returns True when the queue went idle within ``timeout`` (admission
        re-opens either way, unless the queue was closed).  Note that the
        queue does not execute jobs itself — a scheduler must keep consuming
        while drain waits, e.g. the server's background worker or its
        fallback inline loop.
        """
        with self._condition:
            self._draining = True
            try:
                idle = self._condition.wait_for(
                    lambda: not self._heap and self._inflight == 0,
                    timeout=timeout)
            finally:
                self._draining = False
                self._condition.notify_all()
            return idle

    def close(self) -> None:
        """Permanently stop admission (pending jobs may still be processed)."""
        with self._condition:
            self._closed = True
            self._condition.notify_all()
        _LOG.debug("queue closed (%d pending, %d inflight)",
                   len(self._heap), self._inflight)
