"""``repro-serve`` — the solve server from the command line.

Installed as a console script by ``setup.py``.  Two modes:

* **One-shot** — submit registry solves through an in-process server, print
  per-request solution statistics and the telemetry snapshot, optionally
  write everything as JSON::

      repro-serve 2DFDLaplace_16 --repeat 3 --json out.json
      repro-serve a00512 --solver gmres --preconditioner ilu0 --rhs random
      repro-serve 2DFDLaplace_16 --repeat 8 --rhs random --batch-mode block
      repro-serve --list-matrices

* **Wire server** — expose the versioned HTTP/JSON protocol
  (:mod:`repro.server.http`) until interrupted; SIGINT/SIGTERM trigger a
  graceful drain and a clean (zero) exit::

      repro-serve --http --port 8080
      repro-serve --http --port 0          # ephemeral port, printed on stdout

Both modes accept ``--learn`` (with ``--store`` and ``--model-dir``) to run
the online learning loop while serving; ``--learn-status URL`` queries a
running wire server's ``GET /v1/learn`` and exits::

      repro-serve --http --port 0 --store runs/store --learn --model-dir runs/models
      repro-serve 2DFDLaplace_16 --repeat 4 --store runs/store --learn --model-dir runs/models
      repro-serve --learn-status http://127.0.0.1:8080

Admission rejections exit non-zero (2) with the typed
:class:`~repro.api.errors.ErrorEnvelope` on stderr instead of a traceback,
so scripted callers can parse the structured reason.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys

import numpy as np

from repro.api.errors import AdmissionError, ErrorEnvelope
from repro.api.schemas import SolveRequestV1
from repro.matrices.registry import MATRIX_REGISTRY
from repro.obs.trace import Tracer
from repro.precond.factory import KNOWN_FAMILIES
from repro.server.http import SolveHTTPServer
from repro.server.server import SolveServer
from repro.version import __version__

__all__ = ["build_parser", "main"]

#: Exit code of a request rejected at admission (distinct from 1, which
#: means "served but not converged").
EXIT_REJECTED = 2


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-serve`` argument parser (exposed for the smoke test)."""
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Solve a registry matrix through the repro solve server "
                    "(or serve the HTTP/JSON wire protocol with --http).")
    parser.add_argument("matrix", nargs="?",
                        help="registry matrix name (see --list-matrices)")
    parser.add_argument("--list-matrices", action="store_true",
                        help="print the known registry matrices and exit")
    parser.add_argument("--http", action="store_true",
                        help="serve the versioned HTTP/JSON wire protocol "
                             "until interrupted instead of a one-shot solve")
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address of --http (default: 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8080,
                        help="port of --http; 0 picks an ephemeral port "
                             "(default: 8080)")
    parser.add_argument("--rhs", choices=("ones", "random"), default="ones",
                        help="right-hand side: all-ones or seeded random "
                             "(default: ones)")
    parser.add_argument("--solver", default=None,
                        choices=("gmres", "bicgstab", "cg"),
                        help="Krylov solver (default: policy decides)")
    parser.add_argument("--preconditioner", default="auto",
                        choices=("auto",) + KNOWN_FAMILIES,
                        help="preconditioner family (default: auto policy)")
    parser.add_argument("--batch-mode", default="loop",
                        choices=("loop", "block", "auto"),
                        help="multi-rhs execution of same-matrix batches: "
                             "'loop' solves per column (bit-identical to "
                             "sequential solves), 'block' shares one Krylov "
                             "subspace across the batch (fewer matvecs), "
                             "'auto' picks block when the batch and solver "
                             "allow it (default: loop; applies to one-shot "
                             "and --http serving alike)")
    parser.add_argument("--rtol", type=float, default=1e-8,
                        help="relative residual tolerance (default: 1e-8)")
    parser.add_argument("--maxiter", type=int, default=1000,
                        help="iteration budget (default: 1000)")
    parser.add_argument("--repeat", type=int, default=1,
                        help="number of requests to submit (distinct seeded "
                             "rhs with --rhs random; identical otherwise)")
    parser.add_argument("--seed", type=int, default=0,
                        help="seed of the random right-hand sides")
    parser.add_argument("--store", default=None,
                        help="observation-store directory for policy reuse "
                             "and online feedback (default: none)")
    parser.add_argument("--learn", action="store_true",
                        help="enable the online learning loop: train the GNN "
                             "surrogate from the observation store in the "
                             "background, publish versioned models to "
                             "--model-dir and let the policy propose MCMC "
                             "parameters by Expected Improvement (requires "
                             "--store and --model-dir; applies to one-shot "
                             "and --http serving alike)")
    parser.add_argument("--model-dir", default=None, metavar="DIR",
                        help="model-registry directory of --learn (versioned "
                             "snapshots, CURRENT pointer, trainer checkpoint)")
    parser.add_argument("--learn-interval", type=float, default=10.0,
                        metavar="SECONDS",
                        help="background retrain poll period of --learn "
                             "(default: 10)")
    parser.add_argument("--learn-threshold", type=int, default=16, metavar="N",
                        help="new store records that trigger a retrain "
                             "(default: 16)")
    parser.add_argument("--learn-min-records", type=int, default=24,
                        metavar="N",
                        help="store records required before the first "
                             "generation trains (default: 24)")
    parser.add_argument("--learn-status", default=None, metavar="URL",
                        help="query GET /v1/learn of a running --http server "
                             "at URL, print the JSON status and exit")
    parser.add_argument("--trace-dir", default=None, metavar="DIR",
                        help="enable request tracing and write spans to "
                             "DIR/trace.jsonl (streamed) plus DIR/trace.json "
                             "(Chrome trace-event format, written on clean "
                             "shutdown; open in chrome://tracing or Perfetto). "
                             "Applies to one-shot and --http modes alike "
                             "(default: tracing off)")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write responses + telemetry snapshot to PATH")
    parser.add_argument("--version", action="version",
                        version=f"repro-serve {__version__}")
    return parser


def _make_rhs(kind: str, dimension: int, seed: int, index: int) -> np.ndarray:
    if kind == "random":
        return np.random.default_rng(seed + index).standard_normal(dimension)
    return np.ones(dimension)


def _make_tracer(trace_dir: str | None) -> Tracer | None:
    """A JSONL-streaming tracer rooted at ``trace_dir`` (None = tracing off)."""
    if trace_dir is None:
        return None
    os.makedirs(trace_dir, exist_ok=True)
    return Tracer(jsonl_path=os.path.join(trace_dir, "trace.jsonl"))


def _finish_tracer(tracer: Tracer | None, trace_dir: str | None) -> None:
    """Write the Chrome trace-event export and release the JSONL sink."""
    if tracer is None:
        return
    chrome_path = os.path.join(trace_dir, "trace.json")
    tracer.export_chrome(chrome_path)
    tracer.close()
    print(f"repro-serve: wrote trace to {trace_dir}/trace.jsonl "
          f"and {chrome_path}", flush=True)


def _learn_kwargs(args: argparse.Namespace,
                  parser: argparse.ArgumentParser) -> dict:
    """:class:`SolveServer` keyword arguments of the ``--learn`` flags."""
    if not args.learn:
        if args.model_dir is not None:
            parser.error("--model-dir only applies together with --learn")
        return {}
    if args.store is None:
        parser.error("--learn trains from the observation store; "
                     "--store is required")
    if args.model_dir is None:
        parser.error("--learn publishes model versions to a registry; "
                     "--model-dir is required")
    from repro.learn import LearnConfig

    config = LearnConfig(min_records=args.learn_min_records,
                         retrain_threshold=args.learn_threshold,
                         interval_s=args.learn_interval)
    return {"learn": True, "model_dir": args.model_dir,
            "learn_config": config}


def _query_learn_status(url: str) -> int:
    """Print ``GET /v1/learn`` of a running wire server (``--learn-status``)."""
    from urllib.request import urlopen

    with urlopen(url.rstrip("/") + "/v1/learn", timeout=10) as response:
        payload = json.load(response)
    print(json.dumps(payload, indent=2))
    return 0


def _serve_http(args: argparse.Namespace,
                learn_kwargs: dict | None = None) -> int:
    """Blocking wire-server mode; returns 0 on a graceful interrupt."""
    tracer = _make_tracer(args.trace_dir)
    server_kwargs = {} if tracer is None else {"tracer": tracer}
    server_kwargs.update(learn_kwargs or {})
    http_server = SolveHTTPServer(host=args.host, port=args.port,
                                  store=args.store,
                                  batch_mode=args.batch_mode,
                                  **server_kwargs)

    def interrupt(signum, frame):  # noqa: ARG001 - signal API
        raise KeyboardInterrupt

    previous = signal.signal(signal.SIGTERM, interrupt)
    # Announce the resolved (possibly ephemeral) port before blocking so a
    # supervisor can parse it and start pointing clients at the server.
    print(f"repro-serve listening on {http_server.url}", flush=True)
    try:
        http_server.serve_forever()
    except KeyboardInterrupt:
        # serve_forever's finally clause already drained and shut down the
        # owned solve server; reaching here is the *graceful* path.
        print("repro-serve: drained and shut down cleanly", flush=True)
    finally:
        signal.signal(signal.SIGTERM, previous)
        _finish_tracer(tracer, args.trace_dir)
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_matrices:
        for name, spec in MATRIX_REGISTRY.items():
            print(f"{name:36s} n={spec.dimension:<7d} "
                  f"symmetric={spec.symmetric} group={spec.group}")
        return 0
    if args.learn_status is not None:
        if args.matrix is not None or args.http or args.learn:
            parser.error("--learn-status queries a running server and "
                         "combines with no other mode")
        return _query_learn_status(args.learn_status)
    learn_kwargs = _learn_kwargs(args, parser)
    if args.http:
        if args.matrix is not None:
            parser.error("--http serves requests over the wire; "
                         "a matrix argument makes no sense with it")
        # One-shot flags would be silently ignored in wire-server mode;
        # reject them instead of surprising a scripted caller (--store,
        # --host and --port are the meaningful knobs here).
        one_shot_defaults = {"json": None, "repeat": 1, "solver": None,
                             "preconditioner": "auto", "rtol": 1e-8,
                             "maxiter": 1000, "rhs": "ones", "seed": 0}
        conflicting = [f"--{name}" for name, default in
                       one_shot_defaults.items()
                       if getattr(args, name) != default]
        if conflicting:
            parser.error(f"{', '.join(conflicting)} only apply to one-shot "
                         f"solves and are ignored by --http; requests carry "
                         f"these settings over the wire instead")
        return _serve_http(args, learn_kwargs)
    if args.matrix is None:
        parser.error("a matrix name is required (or --list-matrices/--http)")
    if args.matrix not in MATRIX_REGISTRY:
        parser.error(f"unknown matrix {args.matrix!r}; "
                     f"try --list-matrices")
    if args.repeat < 1:
        parser.error(f"--repeat must be >= 1, got {args.repeat}")

    dimension = MATRIX_REGISTRY[args.matrix].dimension
    preconditioner = None if args.preconditioner == "auto" else args.preconditioner
    tracer = _make_tracer(args.trace_dir)
    server_kwargs = {} if tracer is None else {"tracer": tracer}
    server_kwargs.update(learn_kwargs)
    with SolveServer(store=args.store, batch_mode=args.batch_mode,
                     **server_kwargs) as server:
        try:
            jobs = server.submit_many([
                SolveRequestV1(matrix=args.matrix,
                               rhs=_make_rhs(args.rhs, dimension, args.seed,
                                             index),
                               solver=args.solver,
                               preconditioner=preconditioner,
                               rtol=args.rtol,
                               maxiter=args.maxiter,
                               tag=f"{args.matrix}[{index}]")
                for index in range(args.repeat)])
        except AdmissionError as error:
            # The typed envelope on stderr, not a traceback: scripted
            # callers parse the structured reason and retry accordingly.
            envelope = ErrorEnvelope.from_exception(error)
            print(json.dumps(envelope.to_json_dict(), indent=2),
                  file=sys.stderr)
            return EXIT_REJECTED
        server.drain()
        responses = [job.result() for job in jobs]
        snapshot = server.telemetry_snapshot()
        learn_report = server.learn_status() if args.learn else None
    _finish_tracer(tracer, args.trace_dir)

    exit_code = 0
    report = []
    for response in responses:
        status = "converged" if response.converged else "NOT CONVERGED"
        print(f"{response.tag}: {status} in {response.iterations} iterations "
              f"({response.solver} + {response.provenance['built_family']}, "
              f"origin={response.provenance['origin']}, "
              f"residual={response.final_residual:.3e}, "
              f"batched with {response.batch_size - 1} other request(s), "
              f"mode={response.batch_mode})")
        if not response.converged:
            exit_code = 1
        report.append({
            "tag": response.tag,
            "fingerprint": response.fingerprint,
            "converged": bool(response.converged),
            "iterations": int(response.iterations),
            "final_residual": float(response.final_residual),
            "solver": response.solver,
            "provenance": response.provenance.to_json_dict(),
            "batch_size": int(response.batch_size),
            "batch_mode": response.batch_mode,
            "solution_norm": float(np.linalg.norm(response.solution)),
        })

    if learn_report is not None:
        print("\nlearn:")
        print(json.dumps(learn_report, indent=2))
    print("\ntelemetry:")
    print(json.dumps(snapshot, indent=2))
    if args.json is not None:
        payload = {"responses": report, "telemetry": snapshot}
        if learn_report is not None:
            payload["learn"] = learn_report
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {args.json}")
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
