"""``repro-serve`` — submit registry solves to a :class:`SolveServer` from the CLI.

Installed as a console script by ``setup.py``::

    repro-serve 2DFDLaplace_16 --repeat 3 --json out.json
    repro-serve a00512 --solver gmres --preconditioner ilu0 --rhs random
    repro-serve --list-matrices

Each invocation builds an in-process server, submits the requested solves
through the queue (so batching, policy and telemetry behave exactly as in a
long-running deployment), drains, prints per-request solution statistics and
the telemetry snapshot, and optionally writes everything as JSON.
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

from repro.matrices.registry import MATRIX_REGISTRY
from repro.precond.factory import KNOWN_FAMILIES
from repro.server.queue import SolveRequest
from repro.server.server import SolveServer
from repro.version import __version__

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-serve`` argument parser (exposed for the smoke test)."""
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Solve a registry matrix through the repro solve server "
                    "and print solution statistics plus telemetry.")
    parser.add_argument("matrix", nargs="?",
                        help="registry matrix name (see --list-matrices)")
    parser.add_argument("--list-matrices", action="store_true",
                        help="print the known registry matrices and exit")
    parser.add_argument("--rhs", choices=("ones", "random"), default="ones",
                        help="right-hand side: all-ones or seeded random "
                             "(default: ones)")
    parser.add_argument("--solver", default=None,
                        choices=("gmres", "bicgstab", "cg"),
                        help="Krylov solver (default: policy decides)")
    parser.add_argument("--preconditioner", default="auto",
                        choices=("auto",) + KNOWN_FAMILIES,
                        help="preconditioner family (default: auto policy)")
    parser.add_argument("--rtol", type=float, default=1e-8,
                        help="relative residual tolerance (default: 1e-8)")
    parser.add_argument("--maxiter", type=int, default=1000,
                        help="iteration budget (default: 1000)")
    parser.add_argument("--repeat", type=int, default=1,
                        help="number of requests to submit (distinct seeded "
                             "rhs with --rhs random; identical otherwise)")
    parser.add_argument("--seed", type=int, default=0,
                        help="seed of the random right-hand sides")
    parser.add_argument("--store", default=None,
                        help="observation-store directory for policy reuse "
                             "and online feedback (default: none)")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write responses + telemetry snapshot to PATH")
    parser.add_argument("--version", action="version",
                        version=f"repro-serve {__version__}")
    return parser


def _make_rhs(kind: str, dimension: int, seed: int, index: int) -> np.ndarray:
    if kind == "random":
        return np.random.default_rng(seed + index).standard_normal(dimension)
    return np.ones(dimension)


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_matrices:
        for name, spec in MATRIX_REGISTRY.items():
            print(f"{name:36s} n={spec.dimension:<7d} "
                  f"symmetric={spec.symmetric} group={spec.group}")
        return 0
    if args.matrix is None:
        parser.error("a matrix name is required (or --list-matrices)")
    if args.matrix not in MATRIX_REGISTRY:
        parser.error(f"unknown matrix {args.matrix!r}; "
                     f"try --list-matrices")
    if args.repeat < 1:
        parser.error(f"--repeat must be >= 1, got {args.repeat}")

    dimension = MATRIX_REGISTRY[args.matrix].dimension
    preconditioner = None if args.preconditioner == "auto" else args.preconditioner
    with SolveServer(store=args.store) as server:
        jobs = server.submit_many([
            SolveRequest(matrix=args.matrix,
                         rhs=_make_rhs(args.rhs, dimension, args.seed, index),
                         solver=args.solver,
                         preconditioner=preconditioner,
                         rtol=args.rtol,
                         maxiter=args.maxiter,
                         tag=f"{args.matrix}[{index}]")
            for index in range(args.repeat)])
        server.drain()
        responses = [job.result() for job in jobs]
        snapshot = server.telemetry_snapshot()

    exit_code = 0
    report = []
    for response in responses:
        status = "converged" if response.converged else "NOT CONVERGED"
        print(f"{response.tag}: {status} in {response.iterations} iterations "
              f"({response.solver} + {response.provenance['built_family']}, "
              f"origin={response.provenance['origin']}, "
              f"residual={response.final_residual:.3e}, "
              f"batched with {response.batch_size - 1} other request(s))")
        if not response.converged:
            exit_code = 1
        report.append({
            "tag": response.tag,
            "fingerprint": response.fingerprint,
            "converged": bool(response.converged),
            "iterations": int(response.iterations),
            "final_residual": float(response.final_residual),
            "solver": response.solver,
            "provenance": response.provenance,
            "batch_size": int(response.batch_size),
            "solution_norm": float(np.linalg.norm(response.solution)),
        })

    print("\ntelemetry:")
    print(json.dumps(snapshot, indent=2))
    if args.json is not None:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump({"responses": report, "telemetry": snapshot},
                      handle, indent=2)
        print(f"wrote {args.json}")
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
