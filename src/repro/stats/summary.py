"""Box-plot summaries (Figure 3).

Figure 3 summarises, for each search strategy, the distribution of per-candidate
*sample medians* of the metric plus the replication-level distribution of the
single best candidate.  This module computes the classical five-number summary
with Tukey whiskers so that the benchmark harness can print the same numbers a
box plot would display.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ParameterError

__all__ = ["BoxplotSummary", "boxplot_summary", "median_absolute_deviation"]


@dataclass(frozen=True)
class BoxplotSummary:
    """Five-number summary with Tukey whiskers and outliers."""

    minimum: float
    whisker_low: float
    first_quartile: float
    median: float
    third_quartile: float
    whisker_high: float
    maximum: float
    mean: float
    n: int
    outliers: tuple[float, ...] = ()

    def as_dict(self) -> dict[str, float]:
        """Plain-dict form for JSON reports."""
        return {
            "min": self.minimum,
            "whisker_low": self.whisker_low,
            "q1": self.first_quartile,
            "median": self.median,
            "q3": self.third_quartile,
            "whisker_high": self.whisker_high,
            "max": self.maximum,
            "mean": self.mean,
            "n": float(self.n),
            "n_outliers": float(len(self.outliers)),
        }


def boxplot_summary(values: np.ndarray) -> BoxplotSummary:
    """Compute the box-plot statistics of ``values``."""
    values = np.asarray(values, dtype=np.float64).ravel()
    if values.size == 0:
        raise ParameterError("cannot summarise an empty sample")
    q1, median, q3 = np.percentile(values, [25.0, 50.0, 75.0])
    iqr = q3 - q1
    low_fence = q1 - 1.5 * iqr
    high_fence = q3 + 1.5 * iqr
    inside = values[(values >= low_fence) & (values <= high_fence)]
    whisker_low = float(inside.min()) if inside.size else float(values.min())
    whisker_high = float(inside.max()) if inside.size else float(values.max())
    # With interpolated quartiles the nearest in-fence datum can fall strictly
    # inside the box; clamp so the whiskers never cross the quartiles.
    whisker_low = min(whisker_low, float(q1))
    whisker_high = max(whisker_high, float(q3))
    outliers = tuple(float(v) for v in values[(values < low_fence) | (values > high_fence)])
    return BoxplotSummary(
        minimum=float(values.min()),
        whisker_low=whisker_low,
        first_quartile=float(q1),
        median=float(median),
        third_quartile=float(q3),
        whisker_high=whisker_high,
        maximum=float(values.max()),
        mean=float(values.mean()),
        n=int(values.size),
        outliers=outliers,
    )


def median_absolute_deviation(values: np.ndarray) -> float:
    """Median absolute deviation (robust spread measure used in reports)."""
    values = np.asarray(values, dtype=np.float64).ravel()
    if values.size == 0:
        raise ParameterError("cannot summarise an empty sample")
    median = np.median(values)
    return float(np.median(np.abs(values - median)))
