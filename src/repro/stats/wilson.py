"""Wilson score interval for a binomial proportion (Eq. 6 of the paper).

Preferred over the normal approximation because it produces well-behaved
bounds inside ``[0, 1]`` even for small sample sizes or extreme proportions --
the reason the paper uses it for the calibration-curve bands of Figure 1.
"""

from __future__ import annotations

import numpy as np
from scipy.stats import norm

from repro.exceptions import ParameterError

__all__ = ["wilson_interval"]


def wilson_interval(successes: int | float, n: int, *,
                    confidence: float = 0.95) -> tuple[float, float]:
    """Two-sided Wilson score interval for ``successes`` out of ``n`` trials.

    Parameters
    ----------
    successes:
        Number of successes (may be fractional when derived from weights).
    n:
        Number of trials.
    confidence:
        Two-sided confidence level (0.95 in the paper, i.e. ``z = z_0.975``).

    Returns
    -------
    (lower, upper):
        Interval bounds, clipped to ``[0, 1]``.
    """
    if n <= 0:
        raise ParameterError(f"n must be positive, got {n}")
    if not 0.0 < confidence < 1.0:
        raise ParameterError(f"confidence must lie in (0, 1), got {confidence}")
    if successes < 0 or successes > n:
        raise ParameterError(
            f"successes must lie in [0, n], got {successes} with n={n}")
    p_hat = successes / n
    z = float(norm.ppf(0.5 + confidence / 2.0))
    z2 = z * z
    denominator = 1.0 + z2 / n
    centre = p_hat + z2 / (2.0 * n)
    margin = z * np.sqrt(p_hat * (1.0 - p_hat) / n + z2 / (4.0 * n * n))
    lower = (centre - margin) / denominator
    upper = (centre + margin) / denominator
    return float(np.clip(lower, 0.0, 1.0)), float(np.clip(upper, 0.0, 1.0))
