"""Statistical utilities used by the evaluation section of the paper.

* Wilson score intervals for binomial proportions (Eq. 6), used to put
  sampling-uncertainty bands on the calibration curves of Figure 1;
* calibration curves comparing predicted and observed coverage (Figure 1);
* empirical confidence intervals and pointwise inclusion of the predicted
  mean (Figure 2);
* box-plot summaries of per-candidate sample medians (Figure 3).
"""

from repro.stats.wilson import wilson_interval
from repro.stats.calibration import (
    prediction_interval,
    empirical_coverage,
    calibration_curve,
    CalibrationCurve,
    DEFAULT_CONFIDENCE_LEVELS,
)
from repro.stats.intervals import (
    normal_confidence_interval,
    t_confidence_interval,
    mean_inclusion,
)
from repro.stats.summary import boxplot_summary, BoxplotSummary, median_absolute_deviation

__all__ = [
    "wilson_interval",
    "prediction_interval",
    "empirical_coverage",
    "calibration_curve",
    "CalibrationCurve",
    "DEFAULT_CONFIDENCE_LEVELS",
    "normal_confidence_interval",
    "t_confidence_interval",
    "mean_inclusion",
    "boxplot_summary",
    "BoxplotSummary",
    "median_absolute_deviation",
]
