"""Empirical confidence intervals and pointwise mean inclusion (Figure 2).

Figure 2 asks a different question than Figure 1: for every parameter vector
``x_M`` the paper computes the empirical 99 % confidence interval of the
metric over the replications and checks whether the surrogate's *predicted
mean* falls inside it.  This module provides the interval constructions
(normal and Student-t) and the inclusion test.
"""

from __future__ import annotations

import numpy as np
from scipy.stats import norm, t as student_t

from repro.exceptions import ParameterError

__all__ = ["normal_confidence_interval", "t_confidence_interval", "mean_inclusion"]


def normal_confidence_interval(values: np.ndarray, *, confidence: float = 0.99
                               ) -> tuple[float, float]:
    """Normal-approximation CI for the mean of ``values``."""
    values = np.asarray(values, dtype=np.float64).ravel()
    if values.size == 0:
        raise ParameterError("cannot build a confidence interval from no data")
    if not 0.0 < confidence < 1.0:
        raise ParameterError(f"confidence must lie in (0, 1), got {confidence}")
    mean = float(values.mean())
    if values.size == 1:
        return mean, mean
    sem = float(values.std(ddof=1) / np.sqrt(values.size))
    z = float(norm.ppf(0.5 + confidence / 2.0))
    return mean - z * sem, mean + z * sem


def t_confidence_interval(values: np.ndarray, *, confidence: float = 0.99
                          ) -> tuple[float, float]:
    """Student-t CI for the mean of ``values`` (better for 10 replications)."""
    values = np.asarray(values, dtype=np.float64).ravel()
    if values.size == 0:
        raise ParameterError("cannot build a confidence interval from no data")
    if not 0.0 < confidence < 1.0:
        raise ParameterError(f"confidence must lie in (0, 1), got {confidence}")
    mean = float(values.mean())
    if values.size == 1:
        return mean, mean
    sem = float(values.std(ddof=1) / np.sqrt(values.size))
    critical = float(student_t.ppf(0.5 + confidence / 2.0, df=values.size - 1))
    return mean - critical * sem, mean + critical * sem


def mean_inclusion(predicted_mean: float, values: np.ndarray, *,
                   confidence: float = 0.99, method: str = "t") -> bool:
    """Whether ``predicted_mean`` lies inside the empirical CI of ``values``.

    This is the pointwise inclusion criterion of Figure 2.  Degenerate cases
    (zero spread across replications) reduce to an exact-match test with a
    small relative tolerance.
    """
    values = np.asarray(values, dtype=np.float64).ravel()
    if method == "t":
        lower, upper = t_confidence_interval(values, confidence=confidence)
    elif method == "normal":
        lower, upper = normal_confidence_interval(values, confidence=confidence)
    else:
        raise ParameterError(f"unknown method {method!r}; use 't' or 'normal'")
    if lower == upper:
        scale = max(abs(lower), 1e-12)
        return bool(abs(predicted_mean - lower) <= 1e-6 * scale + 1e-9)
    return bool(lower <= predicted_mean <= upper)
