"""Calibration analysis of the surrogate's uncertainty estimates (Figure 1).

For a set of confidence levels ``tau`` the symmetric prediction interval of
Eq. 5, ``[mu - z_{(1+tau)/2} sigma, mu + z_{(1+tau)/2} sigma]``, is compared
against the observations: a perfectly calibrated model has empirical coverage
``tau`` at every level.  Wilson score intervals quantify the sampling
uncertainty of the empirical coverage.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.stats import norm

from repro.exceptions import ParameterError
from repro.stats.wilson import wilson_interval

__all__ = [
    "DEFAULT_CONFIDENCE_LEVELS",
    "prediction_interval",
    "empirical_coverage",
    "CalibrationCurve",
    "calibration_curve",
]

#: Confidence levels used in Figure 1 of the paper.
DEFAULT_CONFIDENCE_LEVELS: tuple[float, ...] = (0.50, 0.68, 0.80, 0.90, 0.95, 0.99)


def prediction_interval(mu: np.ndarray, sigma: np.ndarray, tau: float
                        ) -> tuple[np.ndarray, np.ndarray]:
    """Symmetric Gaussian prediction interval at confidence level ``tau`` (Eq. 5)."""
    if not 0.0 < tau < 1.0:
        raise ParameterError(f"tau must lie in (0, 1), got {tau}")
    mu = np.asarray(mu, dtype=np.float64)
    sigma = np.asarray(sigma, dtype=np.float64)
    z = float(norm.ppf(0.5 * (1.0 + tau)))
    return mu - z * sigma, mu + z * sigma


def empirical_coverage(observations: np.ndarray, mu: np.ndarray,
                       sigma: np.ndarray, tau: float) -> float:
    """Fraction of observations inside the ``tau`` prediction interval."""
    observations = np.asarray(observations, dtype=np.float64)
    lower, upper = prediction_interval(mu, sigma, tau)
    inside = (observations >= lower) & (observations <= upper)
    return float(np.mean(inside))


@dataclass
class CalibrationCurve:
    """Calibration curve with Wilson bands.

    Attributes
    ----------
    confidence_levels:
        Expected coverage probabilities (x-axis of Figure 1).
    observed_coverage:
        Empirical coverage at each level (y-axis of Figure 1).
    wilson_lower, wilson_upper:
        95 % Wilson score band around the empirical coverage.
    n_observations:
        Number of observations entering each coverage estimate.
    label:
        Model label (``"pre_bo"`` / ``"bo_enhanced"``).
    """

    confidence_levels: np.ndarray
    observed_coverage: np.ndarray
    wilson_lower: np.ndarray
    wilson_upper: np.ndarray
    n_observations: int
    label: str = ""

    def mean_absolute_miscalibration(self) -> float:
        """Average |observed - expected| coverage (0 for perfect calibration)."""
        return float(np.mean(np.abs(self.observed_coverage - self.confidence_levels)))

    def is_overconfident(self) -> bool:
        """True when the curve lies below the diagonal on average (paper's Pre-BO)."""
        return float(np.mean(self.observed_coverage - self.confidence_levels)) < 0.0

    def as_rows(self) -> list[dict[str, float]]:
        """Row dictionaries (one per confidence level) for reports."""
        return [
            {
                "expected": float(tau),
                "observed": float(obs),
                "wilson_lower": float(lo),
                "wilson_upper": float(hi),
            }
            for tau, obs, lo, hi in zip(self.confidence_levels, self.observed_coverage,
                                        self.wilson_lower, self.wilson_upper)
        ]


def calibration_curve(observations: np.ndarray, mu: np.ndarray, sigma: np.ndarray, *,
                      confidence_levels=DEFAULT_CONFIDENCE_LEVELS,
                      wilson_confidence: float = 0.95,
                      label: str = "") -> CalibrationCurve:
    """Compute the calibration curve of Figure 1 for one model.

    Parameters
    ----------
    observations:
        Individual observed metric values ``y_j`` (640 in the paper: 64
        parameter vectors x 10 replicates).
    mu, sigma:
        Predicted mean and standard deviation for each observation (identical
        within replicates of the same parameter vector).
    """
    observations = np.asarray(observations, dtype=np.float64).ravel()
    mu = np.asarray(mu, dtype=np.float64).ravel()
    sigma = np.asarray(sigma, dtype=np.float64).ravel()
    if not (observations.size == mu.size == sigma.size):
        raise ParameterError(
            f"length mismatch: observations {observations.size}, mu {mu.size}, "
            f"sigma {sigma.size}")
    if observations.size == 0:
        raise ParameterError("calibration requires at least one observation")

    levels = np.asarray(confidence_levels, dtype=np.float64)
    observed = np.empty_like(levels)
    lower = np.empty_like(levels)
    upper = np.empty_like(levels)
    n = observations.size
    for index, tau in enumerate(levels):
        coverage = empirical_coverage(observations, mu, sigma, float(tau))
        observed[index] = coverage
        lo, hi = wilson_interval(coverage * n, n, confidence=wilson_confidence)
        lower[index] = lo
        upper[index] = hi
    return CalibrationCurve(
        confidence_levels=levels,
        observed_coverage=observed,
        wilson_lower=lower,
        wilson_upper=upper,
        n_observations=n,
        label=label,
    )
