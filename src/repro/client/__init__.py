"""Transport-blind clients of the solve service.

* :class:`Client` — the ABC callers program against.
* :class:`InProcessClient` — wraps a
  :class:`~repro.server.server.SolveServer` directly (optionally
  round-tripping payloads through the lossless wire codec).
* :class:`HTTPClient` — speaks the versioned HTTP/JSON wire protocol of
  :mod:`repro.api` over urllib.

For a fixed seed the two implementations return bit-identical responses —
transport is an operational choice, never a numerical one.
"""

from repro.client.base import Client
from repro.client.http import HTTPClient
from repro.client.inprocess import InProcessClient

__all__ = ["Client", "HTTPClient", "InProcessClient"]
