"""In-process implementation of the :class:`~repro.client.base.Client` ABC.

Wraps a :class:`~repro.server.server.SolveServer` directly — no sockets, no
serialisation cost — while still honouring the wire contract.  With
``wire_fidelity=True`` (the default) every request and response is
round-tripped through the JSON codec before/after serving, so the in-process
client observes *exactly* the bytes-equivalent payloads an HTTP client
observes; because the codec is lossless this costs a copy, never a bit.
That is what makes the cross-transport equivalence test meaningful rather
than vacuous.
"""

from __future__ import annotations

from repro.api.errors import ERROR_NOT_FOUND, ErrorEnvelope
from repro.api.schemas import (
    JobStatusV1,
    SolveRequestV1,
    SolveResponseV1,
    TelemetrySnapshot,
)
from repro.client.base import Client
from repro.server.queue import Job, job_status
from repro.server.server import SolveServer

__all__ = ["InProcessClient"]


class InProcessClient(Client):
    """Talk to a :class:`SolveServer` living in the same process.

    Parameters
    ----------
    server:
        The server to wrap; a fresh one (owned, shut down on :meth:`close`)
        is built from ``server_kwargs`` when ``None``.
    wire_fidelity:
        Round-trip requests and responses through the JSON codec so this
        client sees exactly what a wire client sees (lossless; default on).
    max_tracked_jobs:
        Retention bound of the submitted-job registry: beyond it the oldest
        *finished* jobs (and their solution vectors) are dropped, exactly
        like the HTTP adapter's registry — a long-lived client must not
        accumulate every response it ever received.
    server_kwargs:
        Forwarded to :class:`SolveServer` when it is owned.
    """

    def __init__(self, server: SolveServer | None = None, *,
                 wire_fidelity: bool = True, max_tracked_jobs: int = 4096,
                 **server_kwargs) -> None:
        self._owns_server = server is None
        self.server = SolveServer(**server_kwargs) if server is None else server
        self.wire_fidelity = bool(wire_fidelity)
        self._jobs: dict[int, Job] = {}
        self._max_tracked_jobs = max(int(max_tracked_jobs), 1)

    def _round_trip_request(self, request: SolveRequestV1) -> SolveRequestV1:
        if not self.wire_fidelity:
            return request
        return SolveRequestV1.from_json_dict(request.to_json_dict())

    def _round_trip_response(self, response: SolveResponseV1) -> SolveResponseV1:
        if not self.wire_fidelity:
            return response
        return SolveResponseV1.from_json_dict(response.to_json_dict())

    # -- Client API ----------------------------------------------------------
    def solve(self, request: SolveRequestV1) -> SolveResponseV1:
        """Serve one request synchronously through the wrapped server."""
        response = self.server.solve(self._round_trip_request(request))
        return self._round_trip_response(response)

    def submit(self, request: SolveRequestV1) -> int:
        """Queue one request; returns the job id for :meth:`job`/:meth:`result`."""
        job = self.server.submit(self._round_trip_request(request))
        self._jobs[job.id] = job
        overflow = len(self._jobs) - self._max_tracked_jobs
        if overflow > 0:
            # dicts iterate in insertion order: evict the oldest finished
            # jobs first (pending jobs are bounded by the admission queue).
            evictable = [job_id for job_id, tracked in self._jobs.items()
                         if tracked.done()]
            for stale in evictable[:overflow]:
                del self._jobs[stale]
        return job.id

    def job(self, job_id: int) -> JobStatusV1:
        """Status of a job submitted through this client."""
        job = self._jobs.get(job_id)
        if job is None:
            # Same behaviour as a remote 404: raise through the envelope so
            # transport-blind callers catch one exception type.
            ErrorEnvelope(code=ERROR_NOT_FOUND,
                          message=f"no such job {job_id}").raise_()
        return job_status(job, response_transform=self._round_trip_response)

    def metrics(self) -> TelemetrySnapshot:
        """The wrapped server's telemetry snapshot."""
        return TelemetrySnapshot.from_snapshot(
            self.server.telemetry_snapshot())

    def metrics_prometheus(self) -> str:
        """The wrapped server's metrics in Prometheus text format."""
        return self.server.prometheus_metrics()

    def health(self) -> dict:
        """Liveness + queue state, shaped like ``GET /v1/healthz``."""
        return self.server.health_snapshot()

    def drain(self, timeout: float | None = 60.0) -> bool:
        """Complete everything admitted on the wrapped server."""
        return self.server.drain(timeout=timeout)

    def close(self) -> None:
        """Shut the wrapped server down when this client owns it."""
        if self._owns_server:
            self.server.shutdown()
        self._jobs.clear()
