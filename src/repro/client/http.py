"""HTTP implementation of the :class:`~repro.client.base.Client` ABC.

Speaks the versioned wire protocol of :mod:`repro.api` over stdlib
``http.client`` — no new dependencies — against the endpoints served by
:class:`repro.server.http.SolveHTTPServer` (or the fleet router, which
exposes the same schema).  Error envelopes returned by the server are
re-raised as the same exceptions an in-process caller would see
(:class:`~repro.api.errors.AdmissionError` for admission rejections,
:class:`~repro.api.errors.RemoteSolveError` otherwise), so a caller's
``except`` clauses are transport-blind too.

Reachability is part of the contract: the client separates the *connect*
timeout (how long to wait for the server to accept) from the *read* timeout
(how long to wait for an answer — a synchronous solve holds the response
until the solve finishes), retries exactly once on connection-refused (the
server may be mid-restart; nothing was sent, so the retry is safe for any
method), and surfaces every connection-level failure as a typed
:class:`~repro.api.errors.RemoteSolveError` whose envelope carries the
``unavailable`` code, the target address and a ``kind`` of ``"connection"``
or ``"timeout"`` — a hung replica can no longer hang the caller forever.
The fleet router keys its failover decision on exactly this surface.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import NamedTuple
from urllib.parse import urlsplit

from repro.api.errors import ERROR_UNAVAILABLE, ErrorEnvelope, SchemaError
from repro.api.schemas import (
    JobStatusV1,
    SolveRequestV1,
    SolveResponseV1,
    TelemetrySnapshot,
)
from repro.client.base import Client
from repro.exceptions import ParameterError
from repro.obs.trace import current_trace_id

__all__ = ["HTTPClient", "RawReply"]

#: Mirror of :data:`repro.server.http.TRACE_HEADER` — repeated here so the
#: client stays a pure wire-protocol speaker with no server-package import
#: (equality is asserted in ``tests/test_server_tracing.py``).
TRACE_HEADER = "X-Repro-Trace-Id"

#: Pause before the single connection-refused retry, giving a restarting
#: server a beat to bind without turning the retry into a spin.
RETRY_BACKOFF_S = 0.05


class RawReply(NamedTuple):
    """One raw HTTP exchange: status, lower-cased headers, body bytes."""

    status: int
    headers: dict[str, str]
    body: bytes


class HTTPClient(Client):
    """Talk to a solve server (or fleet router) over HTTP/JSON.

    Parameters
    ----------
    base_url:
        The server's base URL, e.g. ``"http://127.0.0.1:8080"`` (a trailing
        slash is tolerated).
    timeout:
        *Read* timeout in seconds: how long to wait for the response once
        connected.  Synchronous ``/v1/solve`` calls hold the response until
        the solve finishes, so this also bounds solve time.
    connect_timeout:
        How long to wait for the server to accept the connection.  Kept
        separate from ``timeout`` so an unreachable server fails fast even
        when long solves are allowed.
    connect_retries:
        Bounded retry budget for *connection-refused* failures only (the
        request was never sent, so a retry cannot double-execute anything).
        ``1`` (the default) retries once after :data:`RETRY_BACKOFF_S`;
        ``0`` fails immediately — the fleet router uses ``0`` and handles
        failover itself through the ring.
    """

    def __init__(self, base_url: str, *, timeout: float = 300.0,
                 connect_timeout: float = 10.0,
                 connect_retries: int = 1) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = float(timeout)
        self.connect_timeout = float(connect_timeout)
        if connect_retries < 0:
            raise ParameterError(
                f"connect_retries must be >= 0, got {connect_retries}")
        self.connect_retries = int(connect_retries)
        parts = urlsplit(self.base_url)
        if parts.scheme not in ("http", "https") or parts.hostname is None:
            raise ParameterError(
                f"base_url must be an http(s) URL with a host, "
                f"got {base_url!r}")
        self._scheme = parts.scheme
        self._host = parts.hostname
        self._port = parts.port or (443 if parts.scheme == "https" else 80)
        self._path_prefix = parts.path.rstrip("/")

    # -- reachability failures ----------------------------------------------
    def _unavailable(self, kind: str, error: BaseException) -> "RemoteSolveError":
        from repro.api.errors import RemoteSolveError

        return RemoteSolveError(ErrorEnvelope(
            code=ERROR_UNAVAILABLE,
            message=f"{self.base_url} unreachable: {error} "
                    f"({type(error).__name__})",
            detail={"url": self.base_url, "kind": kind,
                    "error": type(error).__name__}))

    # -- one exchange --------------------------------------------------------
    def _one_exchange(self, method: str, path: str, body: bytes | None,
                      headers: dict[str, str]) -> RawReply:
        connection_cls = (http.client.HTTPSConnection
                          if self._scheme == "https"
                          else http.client.HTTPConnection)
        connection = connection_cls(self._host, self._port,
                                    timeout=self.connect_timeout)
        try:
            connection.connect()
            if connection.sock is not None:
                # Connected: further socket waits are governed by the read
                # timeout (a sync solve legitimately takes a while).
                connection.sock.settimeout(self.timeout)
            connection.request(method, self._path_prefix + path,
                               body=body, headers=headers)
            reply = connection.getresponse()
            data = reply.read()
            return RawReply(reply.status,
                            {key.lower(): value
                             for key, value in reply.getheaders()},
                            data)
        finally:
            connection.close()

    def exchange_raw(self, method: str, path: str, *,
                     body: bytes | None = None,
                     headers: dict[str, str] | None = None) -> RawReply:
        """One raw HTTP exchange with the reachability contract applied.

        Returns the reply whatever its status (callers map error envelopes
        themselves — the fleet router proxies 4xx/5xx bodies verbatim).
        Raises :class:`~repro.api.errors.RemoteSolveError` with the
        ``unavailable`` envelope when the server cannot be reached at all:
        connection refused (after the bounded retry), connection reset /
        dropped mid-exchange (``kind="connection"``), or a connect/read
        timeout (``kind="timeout"``).
        """
        headers = dict(headers or {})
        attempts = self.connect_retries + 1
        for attempt in range(attempts):
            try:
                return self._one_exchange(method, path, body, headers)
            except ConnectionRefusedError as error:
                if attempt + 1 < attempts:
                    time.sleep(RETRY_BACKOFF_S)
                    continue
                raise self._unavailable("connection", error) from error
            except TimeoutError as error:
                raise self._unavailable("timeout", error) from error
            except (ConnectionError, http.client.HTTPException) as error:
                # Reset / remote-disconnected / garbled status line: the
                # server died mid-exchange.  Not retried here — whether a
                # re-send is safe is the caller's call (the router only
                # retries idempotent requests, against another replica).
                raise self._unavailable("connection", error) from error
            except OSError as error:
                raise self._unavailable("connection", error) from error
        raise AssertionError("unreachable")  # pragma: no cover

    def _exchange_bytes(self, method: str, path: str,
                        payload: dict | None = None) -> bytes:
        headers = {"Content-Type": "application/json"}
        # Propagate the ambient trace id so a traced server joins the
        # caller's trace instead of minting a fresh one per request.
        trace_id = current_trace_id()
        if trace_id is not None:
            headers[TRACE_HEADER] = trace_id
        body = (None if payload is None
                else json.dumps(payload).encode("utf-8"))
        reply = self.exchange_raw(method, path, body=body, headers=headers)
        if reply.status >= 400:
            try:
                envelope = ErrorEnvelope.from_json_dict(
                    json.loads(reply.body.decode("utf-8")))
            except Exception:
                raise SchemaError(
                    f"server answered HTTP {reply.status} without a "
                    f"parseable error envelope: {reply.body[:200]!r}")
            envelope.raise_()
        return reply.body

    def _exchange(self, method: str, path: str, payload: dict | None = None
                  ) -> dict:
        body = self._exchange_bytes(method, path, payload)
        try:
            return json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise SchemaError(
                f"server answer is not valid JSON ({error}): {body[:200]!r}")

    # -- Client API ----------------------------------------------------------
    def solve(self, request: SolveRequestV1) -> SolveResponseV1:
        """``POST /v1/solve``: serve one request synchronously."""
        payload = self._exchange("POST", "/v1/solve", request.to_json_dict())
        return SolveResponseV1.from_json_dict(payload)

    def submit(self, request: SolveRequestV1) -> int:
        """``POST /v1/submit``: queue one request, returning its job id."""
        payload = self._exchange("POST", "/v1/submit", request.to_json_dict())
        return JobStatusV1.from_json_dict(payload).job_id

    def job(self, job_id: int) -> JobStatusV1:
        """``GET /v1/jobs/<id>``: current status of a queued job."""
        payload = self._exchange("GET", f"/v1/jobs/{int(job_id)}")
        return JobStatusV1.from_json_dict(payload)

    def metrics(self) -> TelemetrySnapshot:
        """``GET /v1/metrics``: the server's telemetry snapshot."""
        payload = self._exchange("GET", "/v1/metrics")
        return TelemetrySnapshot.from_json_dict(payload)

    def metrics_prometheus(self) -> str:
        """``GET /v1/metrics?format=prometheus``: text exposition format."""
        body = self._exchange_bytes("GET", "/v1/metrics?format=prometheus")
        return body.decode("utf-8")

    def health(self) -> dict:
        """``GET /v1/healthz``: liveness + queue state."""
        return self._exchange("GET", "/v1/healthz")

    def close(self) -> None:
        """Nothing to release: exchanges are one-shot HTTP requests."""
