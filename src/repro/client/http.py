"""HTTP implementation of the :class:`~repro.client.base.Client` ABC.

Speaks the versioned wire protocol of :mod:`repro.api` over plain
``urllib.request`` — no new dependencies — against the endpoints served by
:class:`repro.server.http.SolveHTTPServer`.  Error envelopes returned by the
server are re-raised as the same exceptions an in-process caller would see
(:class:`~repro.api.errors.AdmissionError` for admission rejections,
:class:`~repro.api.errors.RemoteSolveError` otherwise), so a caller's
``except`` clauses are transport-blind too.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

from repro.api.errors import ErrorEnvelope, SchemaError
from repro.api.schemas import (
    JobStatusV1,
    SolveRequestV1,
    SolveResponseV1,
    TelemetrySnapshot,
)
from repro.client.base import Client
from repro.obs.trace import current_trace_id

__all__ = ["HTTPClient"]

#: Mirror of :data:`repro.server.http.TRACE_HEADER` — repeated here so the
#: client stays a pure wire-protocol speaker with no server-package import
#: (equality is asserted in ``tests/test_server_tracing.py``).
TRACE_HEADER = "X-Repro-Trace-Id"


class HTTPClient(Client):
    """Talk to a solve server over HTTP/JSON.

    Parameters
    ----------
    base_url:
        The server's base URL, e.g. ``"http://127.0.0.1:8080"`` (a trailing
        slash is tolerated).
    timeout:
        Per-request socket timeout in seconds.  Synchronous ``/v1/solve``
        calls wait for the full solve, so this also bounds solve time.
    """

    def __init__(self, base_url: str, *, timeout: float = 300.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = float(timeout)

    # -- one exchange --------------------------------------------------------
    def _exchange_bytes(self, method: str, path: str,
                        payload: dict | None = None) -> bytes:
        headers = {"Content-Type": "application/json"}
        # Propagate the ambient trace id so a traced server joins the
        # caller's trace instead of minting a fresh one per request.
        trace_id = current_trace_id()
        if trace_id is not None:
            headers[TRACE_HEADER] = trace_id
        request = urllib.request.Request(
            self.base_url + path,
            data=(None if payload is None
                  else json.dumps(payload).encode("utf-8")),
            headers=headers,
            method=method)
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as reply:
                return reply.read()
        except urllib.error.HTTPError as error:
            body = error.read()
            try:
                envelope = ErrorEnvelope.from_json_dict(
                    json.loads(body.decode("utf-8")))
            except Exception:
                raise SchemaError(
                    f"server answered HTTP {error.code} without a parseable "
                    f"error envelope: {body[:200]!r}")
            envelope.raise_()

    def _exchange(self, method: str, path: str, payload: dict | None = None
                  ) -> dict:
        body = self._exchange_bytes(method, path, payload)
        try:
            return json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise SchemaError(
                f"server answer is not valid JSON ({error}): {body[:200]!r}")

    # -- Client API ----------------------------------------------------------
    def solve(self, request: SolveRequestV1) -> SolveResponseV1:
        """``POST /v1/solve``: serve one request synchronously."""
        payload = self._exchange("POST", "/v1/solve", request.to_json_dict())
        return SolveResponseV1.from_json_dict(payload)

    def submit(self, request: SolveRequestV1) -> int:
        """``POST /v1/submit``: queue one request, returning its job id."""
        payload = self._exchange("POST", "/v1/submit", request.to_json_dict())
        return JobStatusV1.from_json_dict(payload).job_id

    def job(self, job_id: int) -> JobStatusV1:
        """``GET /v1/jobs/<id>``: current status of a queued job."""
        payload = self._exchange("GET", f"/v1/jobs/{int(job_id)}")
        return JobStatusV1.from_json_dict(payload)

    def metrics(self) -> TelemetrySnapshot:
        """``GET /v1/metrics``: the server's telemetry snapshot."""
        payload = self._exchange("GET", "/v1/metrics")
        return TelemetrySnapshot.from_json_dict(payload)

    def metrics_prometheus(self) -> str:
        """``GET /v1/metrics?format=prometheus``: text exposition format."""
        body = self._exchange_bytes("GET", "/v1/metrics?format=prometheus")
        return body.decode("utf-8")

    def health(self) -> dict:
        """``GET /v1/healthz``: liveness + queue state."""
        return self._exchange("GET", "/v1/healthz")

    def close(self) -> None:
        """Nothing to release: exchanges are one-shot urllib requests."""
