"""The transport-agnostic :class:`Client` contract.

Callers program against this ABC and stay *transport-blind*: the same code
runs against :class:`~repro.client.inprocess.InProcessClient` (a wrapped
:class:`~repro.server.server.SolveServer`) and
:class:`~repro.client.http.HTTPClient` (the wire protocol over urllib).
Both speak the frozen schemas of :mod:`repro.api`, raise the same
:class:`~repro.api.errors.AdmissionError` taxonomy on rejection, and — for a
fixed seed — return bit-identical responses.
"""

from __future__ import annotations

import abc
import time

from repro.api.schemas import (
    JobStatusV1,
    SolveRequestV1,
    SolveResponseV1,
    TelemetrySnapshot,
)

__all__ = ["Client"]


class Client(abc.ABC):
    """A solve-service client: solve / submit / poll / observe, any transport."""

    @abc.abstractmethod
    def solve(self, request: SolveRequestV1) -> SolveResponseV1:
        """Serve one request synchronously and return its response.

        Raises :class:`~repro.api.errors.AdmissionError` on rejection, with
        the same structured reason regardless of transport.
        """

    @abc.abstractmethod
    def submit(self, request: SolveRequestV1) -> int:
        """Admit a request into the server's queue; returns the job id."""

    @abc.abstractmethod
    def job(self, job_id: int) -> JobStatusV1:
        """Current status of a submitted job (response/error once finished)."""

    @abc.abstractmethod
    def metrics(self) -> TelemetrySnapshot:
        """The server's telemetry snapshot."""

    @abc.abstractmethod
    def metrics_prometheus(self) -> str:
        """The server's metrics in Prometheus text exposition format."""

    @abc.abstractmethod
    def health(self) -> dict:
        """Liveness information (status, schema version, queue state)."""

    @abc.abstractmethod
    def close(self) -> None:
        """Release the client (and any owned server)."""

    # -- conveniences shared by every transport ------------------------------
    def result(self, job_id: int, *, timeout: float = 60.0,
               poll_interval: float = 0.02) -> SolveResponseV1:
        """Poll :meth:`job` until the job finishes; return its response.

        Raises the job's mapped failure when it failed and
        :class:`TimeoutError` when ``timeout`` elapses first.
        """
        deadline = time.monotonic() + timeout
        while True:
            status = self.job(job_id)
            if status.error is not None:
                status.error.raise_()
            if status.response is not None:
                return status.response
            if status.state in ("done", "failed"):
                raise RuntimeError(
                    f"job {job_id} finished ({status.state}) without a "
                    f"response or error envelope")
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} did not finish within {timeout} s")
            time.sleep(poll_interval)

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
