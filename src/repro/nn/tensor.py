"""Reverse-mode autodiff tensor.

A :class:`Tensor` wraps a ``float64`` NumPy array together with an optional
gradient buffer and a closure that propagates gradients to its parents.  The
graph is dynamic: every operation in :mod:`repro.nn.functional` records its
parents and a backward closure; :meth:`Tensor.backward` topologically sorts the
tape and accumulates gradients.

Only the features needed by the surrogate model are implemented, but those are
implemented carefully: full broadcasting support in the element-wise
operations, correct un-broadcasting in their backward passes, and gradient
accumulation when a tensor feeds several consumers.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Iterable, Iterator

import numpy as np

from repro.exceptions import AutodiffError

__all__ = ["Tensor", "no_grad", "is_grad_enabled"]

_GRAD_ENABLED = True


@contextmanager
def no_grad() -> Iterator[None]:
    """Context manager disabling tape construction (inference mode)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def is_grad_enabled() -> bool:
    """Whether operations currently record the autodiff tape."""
    return _GRAD_ENABLED


class Tensor:
    """N-dimensional array with reverse-mode automatic differentiation.

    Parameters
    ----------
    data:
        Array-like; stored as a ``float64`` NumPy array.
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad`.
    parents:
        Tensors this node was computed from (internal use).
    backward_fn:
        Closure receiving the upstream gradient of this node and writing
        gradients into the parents (internal use).
    name:
        Optional label used in error messages and debugging.
    """

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward_fn", "name")

    def __init__(self, data, requires_grad: bool = False,
                 parents: Iterable["Tensor"] = (),
                 backward_fn: Callable[[np.ndarray], None] | None = None,
                 name: str = "") -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.requires_grad = bool(requires_grad)
        self.grad: np.ndarray | None = None
        self._parents: tuple[Tensor, ...] = tuple(parents) if _GRAD_ENABLED else ()
        self._backward_fn = backward_fn if _GRAD_ENABLED else None
        self.name = name

    # -- ndarray-like conveniences ------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        """Shape of the underlying array."""
        return self.data.shape

    @property
    def ndim(self) -> int:
        """Number of dimensions."""
        return self.data.ndim

    @property
    def size(self) -> int:
        """Total number of elements."""
        return self.data.size

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        """Return the value of a scalar tensor as a Python float."""
        if self.data.size != 1:
            raise AutodiffError(
                f"item() requires a scalar tensor, got shape {self.shape}")
        return float(self.data.reshape(()))

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the tape."""
        return Tensor(self.data, requires_grad=False)

    def __repr__(self) -> str:
        label = f" name={self.name!r}" if self.name else ""
        return (f"Tensor(shape={self.shape}, requires_grad={self.requires_grad}"
                f"{label})")

    # -- gradient machinery ---------------------------------------------------
    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self.grad = None

    def accumulate_grad(self, gradient: np.ndarray) -> None:
        """Add ``gradient`` into :attr:`grad` (allocating it on first use)."""
        if not self.requires_grad:
            return
        gradient = np.asarray(gradient, dtype=np.float64)
        if gradient.shape != self.data.shape:
            raise AutodiffError(
                f"gradient shape {gradient.shape} does not match tensor shape "
                f"{self.data.shape} (tensor {self.name or '<unnamed>'})")
        if self.grad is None:
            self.grad = gradient.copy()
        else:
            self.grad += gradient

    def _toposort(self) -> list["Tensor"]:
        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))
        return order

    def backward(self, gradient: np.ndarray | float | None = None) -> None:
        """Backpropagate from this tensor through the recorded tape.

        Parameters
        ----------
        gradient:
            Upstream gradient; defaults to 1 for scalar tensors (the usual
            loss case) and must be supplied explicitly otherwise.
        """
        if gradient is None:
            if self.data.size != 1:
                raise AutodiffError(
                    "backward() without an explicit gradient requires a scalar "
                    f"tensor, got shape {self.shape}")
            gradient = np.ones_like(self.data)
        gradient = np.asarray(gradient, dtype=np.float64)
        if gradient.shape != self.data.shape:
            gradient = np.broadcast_to(gradient, self.data.shape).copy()

        order = self._toposort()
        grad_map: dict[int, np.ndarray] = {id(self): gradient}
        for node in reversed(order):
            node_grad = grad_map.pop(id(node), None)
            if node_grad is None:
                continue
            if node.requires_grad:
                node.accumulate_grad(node_grad)
            if node._backward_fn is None:
                continue
            parent_grads = node._backward_fn(node_grad)
            if parent_grads is None:
                continue
            for parent, parent_grad in zip(node._parents, parent_grads):
                if parent_grad is None:
                    continue
                existing = grad_map.get(id(parent))
                if existing is None:
                    grad_map[id(parent)] = np.asarray(parent_grad, dtype=np.float64)
                else:
                    grad_map[id(parent)] = existing + parent_grad

    # -- operator sugar (delegates to functional) -----------------------------
    def __add__(self, other):
        from repro.nn import functional as F

        return F.add(self, _ensure_tensor(other))

    def __radd__(self, other):
        from repro.nn import functional as F

        return F.add(_ensure_tensor(other), self)

    def __sub__(self, other):
        from repro.nn import functional as F

        return F.sub(self, _ensure_tensor(other))

    def __rsub__(self, other):
        from repro.nn import functional as F

        return F.sub(_ensure_tensor(other), self)

    def __mul__(self, other):
        from repro.nn import functional as F

        return F.mul(self, _ensure_tensor(other))

    def __rmul__(self, other):
        from repro.nn import functional as F

        return F.mul(_ensure_tensor(other), self)

    def __truediv__(self, other):
        from repro.nn import functional as F

        return F.div(self, _ensure_tensor(other))

    def __rtruediv__(self, other):
        from repro.nn import functional as F

        return F.div(_ensure_tensor(other), self)

    def __neg__(self):
        from repro.nn import functional as F

        return F.neg(self)

    def __matmul__(self, other):
        from repro.nn import functional as F

        return F.matmul(self, _ensure_tensor(other))

    def sum(self, axis=None, keepdims: bool = False):
        from repro.nn import functional as F

        return F.sum(self, axis=axis, keepdims=keepdims)

    def mean(self, axis=None, keepdims: bool = False):
        from repro.nn import functional as F

        return F.mean(self, axis=axis, keepdims=keepdims)

    def reshape(self, *shape):
        from repro.nn import functional as F

        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return F.reshape(self, shape)


def _ensure_tensor(value) -> Tensor:
    """Wrap plain numbers / arrays into constant tensors."""
    if isinstance(value, Tensor):
        return value
    return Tensor(np.asarray(value, dtype=np.float64))
