"""Reverse-mode autodiff tensor.

A :class:`Tensor` wraps a ``float64`` NumPy array together with an optional
gradient buffer and, when it was produced by a differentiable operation, the
:class:`~repro.nn.autograd.Operation` node that created it.  The graph is
dynamic: every operation in :mod:`repro.nn.functional` goes through
:func:`repro.nn.autograd.apply`, which records the creator node;
:meth:`Tensor.backward` hands the walk to the graph engine in
:mod:`repro.nn.autograd`, which topologically sorts the operation nodes,
accumulates gradients across consumers, un-broadcasts them to the operand
shapes and releases saved activations as it goes (``retain_graph=True`` keeps
them for a second pass).

Only the features needed by the surrogate model are implemented, but those
are implemented carefully: full broadcasting support in the element-wise
operations, correct un-broadcasting in their backward passes, and gradient
accumulation when a tensor feeds several consumers.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import AutodiffError
from repro.nn import autograd
from repro.nn.autograd import Operation, is_grad_enabled, no_grad

__all__ = ["Tensor", "no_grad", "is_grad_enabled"]


class Tensor:
    """N-dimensional array with reverse-mode automatic differentiation.

    Parameters
    ----------
    data:
        Array-like; stored as a ``float64`` NumPy array.
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad`.
    name:
        Optional label used in error messages and debugging.
    """

    __slots__ = ("data", "grad", "requires_grad", "_op", "name")

    def __init__(self, data, requires_grad: bool = False,
                 name: str = "") -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.requires_grad = bool(requires_grad)
        self.grad: np.ndarray | None = None
        self._op: Operation | None = None
        self.name = name

    # -- ndarray-like conveniences ------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        """Shape of the underlying array."""
        return self.data.shape

    @property
    def ndim(self) -> int:
        """Number of dimensions."""
        return self.data.ndim

    @property
    def size(self) -> int:
        """Total number of elements."""
        return self.data.size

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        """Return the value of a scalar tensor as a Python float."""
        if self.data.size != 1:
            raise AutodiffError(
                f"item() requires a scalar tensor, got shape {self.shape}")
        return float(self.data.reshape(()))

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the tape."""
        return Tensor(self.data, requires_grad=False)

    def __repr__(self) -> str:
        label = f" name={self.name!r}" if self.name else ""
        return (f"Tensor(shape={self.shape}, requires_grad={self.requires_grad}"
                f"{label})")

    # -- gradient machinery ---------------------------------------------------
    @property
    def _parents(self) -> tuple["Tensor", ...]:
        """Tensors this node was computed from (empty for leaves)."""
        operation = self._op
        return operation.inputs if operation is not None else ()

    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self.grad = None

    def accumulate_grad(self, gradient: np.ndarray, *, _owned: bool = False) -> None:
        """Add ``gradient`` into :attr:`grad` (allocating it on first use).

        ``_owned`` is an engine-internal hint: a buffer the backward engine
        allocated itself is donated directly instead of being defensively
        copied.
        """
        if not self.requires_grad:
            return
        gradient = np.asarray(gradient, dtype=np.float64)
        if gradient.shape != self.data.shape:
            raise AutodiffError(
                f"gradient shape {gradient.shape} does not match tensor shape "
                f"{self.data.shape} (tensor {self.name or '<unnamed>'})")
        if self.grad is None:
            self.grad = gradient if _owned else gradient.copy()
        else:
            self.grad += gradient

    def _toposort(self) -> list["Tensor"]:
        """Reachable tape nodes in topological order (delegates to the engine)."""
        return autograd.toposort(self)

    def backward(self, gradient: np.ndarray | float | None = None, *,
                 retain_graph: bool = False) -> None:
        """Backpropagate from this tensor through the recorded tape.

        Parameters
        ----------
        gradient:
            Upstream gradient; defaults to 1 for scalar tensors (the usual
            loss case) and must be supplied explicitly otherwise.
        retain_graph:
            Keep saved activations after the pass so backward can run again
            over the same graph; without it a second pass raises
            :class:`~repro.exceptions.AutodiffError`.
        """
        autograd.backward(self, gradient, retain_graph=retain_graph)

    # -- operator sugar (delegates to functional) -----------------------------
    def __add__(self, other):
        from repro.nn import functional as F

        return F.add(self, _ensure_tensor(other))

    def __radd__(self, other):
        from repro.nn import functional as F

        return F.add(_ensure_tensor(other), self)

    def __sub__(self, other):
        from repro.nn import functional as F

        return F.sub(self, _ensure_tensor(other))

    def __rsub__(self, other):
        from repro.nn import functional as F

        return F.sub(_ensure_tensor(other), self)

    def __mul__(self, other):
        from repro.nn import functional as F

        return F.mul(self, _ensure_tensor(other))

    def __rmul__(self, other):
        from repro.nn import functional as F

        return F.mul(_ensure_tensor(other), self)

    def __truediv__(self, other):
        from repro.nn import functional as F

        return F.div(self, _ensure_tensor(other))

    def __rtruediv__(self, other):
        from repro.nn import functional as F

        return F.div(_ensure_tensor(other), self)

    def __neg__(self):
        from repro.nn import functional as F

        return F.neg(self)

    def __matmul__(self, other):
        from repro.nn import functional as F

        return F.matmul(self, _ensure_tensor(other))

    def sum(self, axis=None, keepdims: bool = False):
        from repro.nn import functional as F

        return F.sum(self, axis=axis, keepdims=keepdims)

    def mean(self, axis=None, keepdims: bool = False):
        from repro.nn import functional as F

        return F.mean(self, axis=axis, keepdims=keepdims)

    def reshape(self, *shape):
        from repro.nn import functional as F

        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return F.reshape(self, shape)


def _ensure_tensor(value) -> Tensor:
    """Wrap plain numbers / arrays into constant tensors."""
    if isinstance(value, Tensor):
        return value
    return Tensor(np.asarray(value, dtype=np.float64))


autograd._register_tensor_type(Tensor)
