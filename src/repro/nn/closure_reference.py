"""The seed closure-based autodiff kept verbatim as an equivalence oracle.

Before the operation-tape engine (:mod:`repro.nn.autograd`), every function
in :mod:`repro.nn.functional` hand-coded its own backward closure and
``Tensor.backward`` walked those opaque closures.  This module preserves that
implementation -- :class:`ClosureTensor` plus the closure-registering ops --
so that

* the equivalence suite can assert, in-process and therefore bit-exactly,
  that the tape engine produces *identical* gradients and identical seeded
  surrogate training trajectories (``tests/test_nn_autograd.py``), and
* ``benchmarks/bench_autograd.py`` can measure tape overhead against the
  closure baseline it replaced.

The code is transcribed from the seed ``tensor.py`` / ``functional.py`` with
only mechanical changes (``Tensor`` renamed, the tape always records, and a
module-level ``ACCUMULATION_ALLOCATIONS`` counter at the two allocation sites
the new engine optimises).  Do not "improve" it: its value is being the old
behaviour, byte for byte.

:func:`seeded_surrogate_problem` and :func:`surrogate_loss_tensor` build the
seeded GNN-surrogate training step used by both consumers; the step is
written against a generic ``ops`` module interface so the *same* model code
runs on either engine.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import AutodiffError

__all__ = [
    "ClosureTensor",
    "Tensor",
    "seeded_surrogate_problem",
    "init_surrogate_parameters",
    "surrogate_loss_tensor",
    "reset_allocation_counter",
    "allocation_counter",
]

#: Gradient-buffer allocations made by the closure engine (fan-in additions
#: and first-use leaf copies); the tape engine's ``backward_stats`` is the
#: counterpart measured by the benchmark.
_ALLOCATIONS = 0


def reset_allocation_counter() -> None:
    """Zero the closure engine's gradient-allocation counter."""
    global _ALLOCATIONS
    _ALLOCATIONS = 0


def allocation_counter() -> int:
    """Gradient-buffer allocations since the last reset."""
    return _ALLOCATIONS


class ClosureTensor:
    """The seed autodiff tensor: parents + per-node backward closure."""

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward_fn",
                 "name")

    def __init__(self, data, requires_grad: bool = False, parents=(),
                 backward_fn=None, name: str = "") -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.requires_grad = bool(requires_grad)
        self.grad: np.ndarray | None = None
        self._parents = tuple(parents)
        self._backward_fn = backward_fn
        self.name = name

    @property
    def shape(self):
        return self.data.shape

    def item(self) -> float:
        if self.data.size != 1:
            raise AutodiffError(
                f"item() requires a scalar tensor, got shape {self.shape}")
        return float(self.data.reshape(()))

    def zero_grad(self) -> None:
        self.grad = None

    def accumulate_grad(self, gradient: np.ndarray) -> None:
        global _ALLOCATIONS
        if not self.requires_grad:
            return
        gradient = np.asarray(gradient, dtype=np.float64)
        if gradient.shape != self.data.shape:
            raise AutodiffError(
                f"gradient shape {gradient.shape} does not match tensor shape "
                f"{self.data.shape}")
        if self.grad is None:
            self.grad = gradient.copy()
            _ALLOCATIONS += 1
        else:
            self.grad += gradient

    def _toposort(self):
        order = []
        visited: set[int] = set()
        stack = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))
        return order

    def backward(self, gradient: np.ndarray | float | None = None) -> None:
        global _ALLOCATIONS
        if gradient is None:
            if self.data.size != 1:
                raise AutodiffError(
                    "backward() without an explicit gradient requires a "
                    f"scalar tensor, got shape {self.shape}")
            gradient = np.ones_like(self.data)
        gradient = np.asarray(gradient, dtype=np.float64)
        if gradient.shape != self.data.shape:
            gradient = np.broadcast_to(gradient, self.data.shape).copy()

        order = self._toposort()
        grad_map: dict[int, np.ndarray] = {id(self): gradient}
        for node in reversed(order):
            node_grad = grad_map.pop(id(node), None)
            if node_grad is None:
                continue
            if node.requires_grad:
                node.accumulate_grad(node_grad)
            if node._backward_fn is None:
                continue
            parent_grads = node._backward_fn(node_grad)
            if parent_grads is None:
                continue
            for parent, parent_grad in zip(node._parents, parent_grads):
                if parent_grad is None:
                    continue
                existing = grad_map.get(id(parent))
                if existing is None:
                    grad_map[id(parent)] = np.asarray(parent_grad,
                                                      dtype=np.float64)
                else:
                    grad_map[id(parent)] = existing + parent_grad
                    _ALLOCATIONS += 1


#: Alias so generic model code can use ``ops.Tensor`` with either engine.
Tensor = ClosureTensor


def _ensure_tensor(value) -> ClosureTensor:
    if isinstance(value, ClosureTensor):
        return value
    return ClosureTensor(np.asarray(value, dtype=np.float64))


def _unbroadcast(gradient: np.ndarray, shape) -> np.ndarray:
    if gradient.shape == shape:
        return gradient
    while gradient.ndim > len(shape):
        gradient = gradient.sum(axis=0)
    for axis, dim in enumerate(shape):
        if dim == 1 and gradient.shape[axis] != 1:
            gradient = gradient.sum(axis=axis, keepdims=True)
    return gradient.reshape(shape)


def _make(data, parents, backward_fn) -> ClosureTensor:
    return ClosureTensor(data, parents=parents, backward_fn=backward_fn)


def add(a, b):
    a, b = _ensure_tensor(a), _ensure_tensor(b)
    out_data = a.data + b.data

    def backward(grad):
        return _unbroadcast(grad, a.data.shape), _unbroadcast(grad, b.data.shape)

    return _make(out_data, (a, b), backward)


def sub(a, b):
    a, b = _ensure_tensor(a), _ensure_tensor(b)
    out_data = a.data - b.data

    def backward(grad):
        return _unbroadcast(grad, a.data.shape), _unbroadcast(-grad, b.data.shape)

    return _make(out_data, (a, b), backward)


def mul(a, b):
    a, b = _ensure_tensor(a), _ensure_tensor(b)
    out_data = a.data * b.data

    def backward(grad):
        return (_unbroadcast(grad * b.data, a.data.shape),
                _unbroadcast(grad * a.data, b.data.shape))

    return _make(out_data, (a, b), backward)


def div(a, b):
    a, b = _ensure_tensor(a), _ensure_tensor(b)
    out_data = a.data / b.data

    def backward(grad):
        return (_unbroadcast(grad / b.data, a.data.shape),
                _unbroadcast(-grad * a.data / (b.data ** 2), b.data.shape))

    return _make(out_data, (a, b), backward)


def neg(a):
    a = _ensure_tensor(a)

    def backward(grad):
        return (-grad,)

    return _make(-a.data, (a,), backward)


def pow_scalar(a, exponent: float):
    a = _ensure_tensor(a)
    out_data = a.data ** exponent

    def backward(grad):
        return (grad * exponent * a.data ** (exponent - 1.0),)

    return _make(out_data, (a,), backward)


def matmul(a, b):
    a, b = _ensure_tensor(a), _ensure_tensor(b)
    out_data = a.data @ b.data

    def backward(grad):
        a_data, b_data = a.data, b.data
        grad = np.asarray(grad, dtype=np.float64)
        if a_data.ndim == 1 and b_data.ndim == 2:
            grad_a = grad @ b_data.T
            grad_b = np.outer(a_data, grad)
        elif a_data.ndim == 2 and b_data.ndim == 1:
            grad_a = np.outer(grad, b_data)
            grad_b = a_data.T @ grad
        elif a_data.ndim == 1 and b_data.ndim == 1:
            grad_a = grad * b_data
            grad_b = grad * a_data
        else:
            grad_a = grad @ b_data.T
            grad_b = a_data.T @ grad
        return grad_a, grad_b

    return _make(out_data, (a, b), backward)


def sum(a, axis=None, keepdims: bool = False):  # noqa: A001
    a = _ensure_tensor(a)
    out_data = a.data.sum(axis=axis, keepdims=keepdims)

    def backward(grad):
        grad = np.asarray(grad, dtype=np.float64)
        if axis is None:
            return (np.broadcast_to(grad, a.data.shape).copy(),)
        if not keepdims:
            grad = np.expand_dims(grad, axis=axis)
        return (np.broadcast_to(grad, a.data.shape).copy(),)

    return _make(out_data, (a,), backward)


def mean(a, axis=None, keepdims: bool = False):
    a = _ensure_tensor(a)
    out_data = a.data.mean(axis=axis, keepdims=keepdims)
    if axis is None:
        count = a.data.size
    else:
        count = a.data.shape[axis]

    def backward(grad):
        grad = np.asarray(grad, dtype=np.float64) / count
        if axis is None:
            return (np.broadcast_to(grad, a.data.shape).copy(),)
        if not keepdims:
            grad = np.expand_dims(grad, axis=axis)
        return (np.broadcast_to(grad, a.data.shape).copy(),)

    return _make(out_data, (a,), backward)


def reshape(a, shape):
    a = _ensure_tensor(a)
    out_data = a.data.reshape(shape)

    def backward(grad):
        return (np.asarray(grad).reshape(a.data.shape),)

    return _make(out_data, (a,), backward)


def concat(tensors, axis: int = -1):
    tensors = [_ensure_tensor(t) for t in tensors]
    if not tensors:
        raise AutodiffError("concat() requires at least one tensor")
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad):
        grad = np.asarray(grad, dtype=np.float64)
        slices = []
        for index in range(len(tensors)):
            selector = [slice(None)] * grad.ndim
            selector[axis] = slice(offsets[index], offsets[index + 1])
            slices.append(grad[tuple(selector)])
        return tuple(slices)

    return _make(out_data, tuple(tensors), backward)


def stack(tensors, axis: int = 0):
    tensors = [_ensure_tensor(t) for t in tensors]
    if not tensors:
        raise AutodiffError("stack() requires at least one tensor")
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad):
        grad = np.asarray(grad, dtype=np.float64)
        return tuple(np.take(grad, index, axis=axis)
                     for index in range(len(tensors)))

    return _make(out_data, tuple(tensors), backward)


def relu(a):
    a = _ensure_tensor(a)
    mask = a.data > 0
    out_data = a.data * mask

    def backward(grad):
        return (grad * mask,)

    return _make(out_data, (a,), backward)


def leaky_relu(a, negative_slope: float = 0.2):
    a = _ensure_tensor(a)
    mask = a.data > 0
    out_data = np.where(mask, a.data, negative_slope * a.data)

    def backward(grad):
        return (grad * np.where(mask, 1.0, negative_slope),)

    return _make(out_data, (a,), backward)


def sigmoid(a):
    a = _ensure_tensor(a)
    out_data = 1.0 / (1.0 + np.exp(-a.data))

    def backward(grad):
        return (grad * out_data * (1.0 - out_data),)

    return _make(out_data, (a,), backward)


def tanh(a):
    a = _ensure_tensor(a)
    out_data = np.tanh(a.data)

    def backward(grad):
        return (grad * (1.0 - out_data ** 2),)

    return _make(out_data, (a,), backward)


def exp(a):
    a = _ensure_tensor(a)
    out_data = np.exp(a.data)

    def backward(grad):
        return (grad * out_data,)

    return _make(out_data, (a,), backward)


def log(a):
    a = _ensure_tensor(a)
    out_data = np.log(a.data)

    def backward(grad):
        return (grad / a.data,)

    return _make(out_data, (a,), backward)


def softplus(a):
    a = _ensure_tensor(a)
    out_data = np.logaddexp(0.0, a.data)
    sig = 1.0 / (1.0 + np.exp(-a.data))

    def backward(grad):
        return (grad * sig,)

    return _make(out_data, (a,), backward)


def dropout(a, p: float, *, training: bool, rng=None):
    a = _ensure_tensor(a)
    if not 0.0 <= p < 1.0:
        raise AutodiffError(f"dropout probability must lie in [0, 1), got {p}")
    if not training or p == 0.0:
        def backward_identity(grad):
            return (grad,)

        return _make(a.data.copy(), (a,), backward_identity)
    generator = rng if rng is not None else np.random.default_rng()
    mask = (generator.random(a.data.shape) >= p) / (1.0 - p)
    out_data = a.data * mask

    def backward(grad):
        return (grad * mask,)

    return _make(out_data, (a,), backward)


def layer_norm(a, gamma, beta, *, eps: float = 1e-5):
    a = _ensure_tensor(a)
    gamma = _ensure_tensor(gamma)
    beta = _ensure_tensor(beta)
    mu = a.data.mean(axis=-1, keepdims=True)
    var = a.data.var(axis=-1, keepdims=True)
    inv_std = 1.0 / np.sqrt(var + eps)
    normalised = (a.data - mu) * inv_std
    out_data = gamma.data * normalised + beta.data

    def backward(grad):
        grad = np.asarray(grad, dtype=np.float64)
        grad_gamma = _unbroadcast(grad * normalised, gamma.data.shape)
        grad_beta = _unbroadcast(grad, beta.data.shape)
        grad_normalised = grad * gamma.data
        grad_a = (grad_normalised
                  - grad_normalised.mean(axis=-1, keepdims=True)
                  - normalised * (grad_normalised * normalised
                                  ).mean(axis=-1, keepdims=True)
                  ) * inv_std
        return grad_a, grad_gamma, grad_beta

    return _make(out_data, (a, gamma, beta), backward)


def gather_rows(a, indices):
    a = _ensure_tensor(a)
    indices = np.asarray(indices, dtype=np.int64)
    out_data = a.data[indices]

    def backward(grad):
        grad_a = np.zeros_like(a.data)
        np.add.at(grad_a, indices, np.asarray(grad, dtype=np.float64))
        return (grad_a,)

    return _make(out_data, (a,), backward)


def segment_sum(a, segment_ids, num_segments: int):
    a = _ensure_tensor(a)
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    if segment_ids.shape[0] != a.data.shape[0]:
        raise AutodiffError(
            f"segment_ids length {segment_ids.shape[0]} does not match rows "
            f"{a.data.shape[0]}")
    out_shape = (num_segments,) + a.data.shape[1:]
    out_data = np.zeros(out_shape, dtype=np.float64)
    np.add.at(out_data, segment_ids, a.data)

    def backward(grad):
        return (np.asarray(grad, dtype=np.float64)[segment_ids],)

    return _make(out_data, (a,), backward)


def segment_mean(a, segment_ids, num_segments: int):
    a = _ensure_tensor(a)
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    counts = np.bincount(segment_ids, minlength=num_segments).astype(np.float64)
    safe_counts = np.maximum(counts, 1.0)
    summed = segment_sum(a, segment_ids, num_segments)
    scale = ClosureTensor((1.0 / safe_counts)[:, None]
                          if a.data.ndim > 1 else 1.0 / safe_counts)
    return mul(summed, scale)


def segment_max(a, segment_ids, num_segments: int):
    a = _ensure_tensor(a)
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    feature_shape = a.data.shape[1:]
    out_data = np.full((num_segments,) + feature_shape, -np.inf,
                       dtype=np.float64)
    np.maximum.at(out_data, segment_ids, a.data)
    empty = ~np.isin(np.arange(num_segments), segment_ids)
    if empty.any():
        out_data[empty] = 0.0

    winners = (a.data == out_data[segment_ids]).astype(np.float64)
    winner_counts = np.zeros((num_segments,) + feature_shape, dtype=np.float64)
    np.add.at(winner_counts, segment_ids, winners)
    winner_counts = np.maximum(winner_counts, 1.0)

    def backward(grad):
        grad = np.asarray(grad, dtype=np.float64)
        return (winners * (grad / winner_counts)[segment_ids],)

    return _make(out_data, (a,), backward)


def mse_loss(prediction, target):
    prediction = _ensure_tensor(prediction)
    target = _ensure_tensor(target)
    difference = sub(prediction, target)
    return mean(mul(difference, difference))


def gaussian_nll_loss(mu, sigma, target, *, eps: float = 1e-6):
    mu = _ensure_tensor(mu)
    sigma = _ensure_tensor(sigma)
    target = _ensure_tensor(target)
    variance = add(mul(sigma, sigma), ClosureTensor(eps))
    residual = sub(target, mu)
    quadratic = div(mul(residual, residual), variance)
    return mean(mul(add(log(variance), quadratic), ClosureTensor(0.5)))


# --------------------------------------------------------------------------
# Seeded GNN-surrogate training step (shared by tests and the benchmark)
# --------------------------------------------------------------------------

#: Mirror-surrogate dimensions (EdgeConv x2, multi + mean aggregation, three
#: MLP stacks and the two heads of Eq. 1) -- small enough for fast tests yet
#: exercising gather/segment/concat/layer-norm/matmul/softplus end to end.
_DIMS = {"node": 3, "edge": 1, "hidden": 6, "xa": 4, "xa_hidden": 5,
         "xm": 3, "xm_hidden": 5, "combined_hidden": 8}


def seeded_surrogate_problem(seed: int = 0, *, num_graphs: int = 2,
                             nodes_per_graph: int = 7,
                             samples: int = 6) -> dict[str, np.ndarray]:
    """Synthetic batched-graph regression problem for the mirror surrogate."""
    rng = np.random.default_rng(seed)
    num_nodes = num_graphs * nodes_per_graph
    sources, targets, node_to_graph = [], [], []
    for graph in range(num_graphs):
        base = graph * nodes_per_graph
        node_to_graph.extend([graph] * nodes_per_graph)
        for node in range(nodes_per_graph):
            # Ring plus one random chord per node, both directions.
            neighbour = base + (node + 1) % nodes_per_graph
            chord = base + int(rng.integers(nodes_per_graph))
            for src, dst in ((base + node, neighbour), (neighbour, base + node),
                             (base + node, chord)):
                sources.append(src)
                targets.append(dst)
    edge_index = np.array([sources, targets], dtype=np.int64)
    return {
        "edge_index": edge_index,
        "edge_features": rng.standard_normal((edge_index.shape[1],
                                              _DIMS["edge"])),
        "node_features": rng.standard_normal((num_nodes, _DIMS["node"])),
        "node_to_graph": np.array(node_to_graph, dtype=np.int64),
        "num_nodes": np.int64(num_nodes),
        "num_graphs": np.int64(num_graphs),
        "sample_graph_index": rng.integers(num_graphs, size=samples),
        "x_a": rng.standard_normal((samples, _DIMS["xa"])),
        "x_m": rng.standard_normal((samples, _DIMS["xm"])),
        "y_mean": np.abs(rng.standard_normal(samples)),
        "y_std": np.abs(rng.standard_normal(samples)) + 0.1,
    }


def init_surrogate_parameters(seed: int = 0) -> dict[str, np.ndarray]:
    """Seeded parameter arrays for the mirror surrogate (name -> ndarray)."""
    rng = np.random.default_rng(seed + 1)
    d = _DIMS

    def linear(name: str, fan_in: int, fan_out: int) -> dict[str, np.ndarray]:
        bound = np.sqrt(6.0 / fan_in)
        return {f"{name}.weight": rng.uniform(-bound, bound, (fan_in, fan_out)),
                f"{name}.bias": np.zeros(fan_out)}

    def norm(name: str, width: int) -> dict[str, np.ndarray]:
        return {f"{name}.gamma": np.ones(width), f"{name}.beta": np.zeros(width)}

    params: dict[str, np.ndarray] = {}
    # conv0: EdgeConv message MLP, "multi" aggregation needs a projection.
    params.update(linear("conv0.message", 2 * d["node"] + d["edge"], d["hidden"]))
    params.update(linear("conv0.project", 3 * d["hidden"], d["hidden"]))
    params.update(norm("conv0.norm", d["hidden"]))
    # conv1: EdgeConv with mean aggregation (the paper's selection).
    params.update(linear("conv1.message", 2 * d["hidden"] + d["edge"], d["hidden"]))
    params.update(norm("conv1.norm", d["hidden"]))
    # Auxiliary MLPs and the combined stack.
    params.update(linear("xa.0", d["xa"], d["xa_hidden"]))
    params.update(norm("xa.0.norm", d["xa_hidden"]))
    params.update(linear("xm.0", d["xm"], d["xm_hidden"]))
    params.update(norm("xm.0.norm", d["xm_hidden"]))
    params.update(linear("xm.1", d["xm_hidden"], d["xm_hidden"]))
    params.update(norm("xm.1.norm", d["xm_hidden"]))
    combined_in = d["hidden"] + d["xa_hidden"] + d["xm_hidden"]
    params.update(linear("combined.0", combined_in, d["combined_hidden"]))
    params.update(norm("combined.0.norm", d["combined_hidden"]))
    params.update(linear("combined.1", d["combined_hidden"], d["combined_hidden"]))
    params.update(norm("combined.1.norm", d["combined_hidden"]))
    params.update(linear("mu_head", d["combined_hidden"], 1))
    params.update(linear("sigma_head", d["combined_hidden"], 1))
    return params


def _block(ops, params, name, x):
    """Linear -> LayerNorm -> ReLU against the generic ops interface."""
    hidden = ops.add(ops.matmul(x, params[f"{name}.weight"]),
                     params[f"{name}.bias"])
    hidden = ops.layer_norm(hidden, params[f"{name}.norm.gamma"],
                            params[f"{name}.norm.beta"])
    return ops.relu(hidden)


def surrogate_loss_tensor(ops, params, problem):
    """One differentiable loss evaluation of the mirror surrogate.

    ``ops`` is either :mod:`repro.nn.functional` (tape engine) or this module
    (closure oracle); ``params`` maps the names of
    :func:`init_surrogate_parameters` to tensors of the matching engine.
    """
    num_nodes = int(problem["num_nodes"])
    num_graphs = int(problem["num_graphs"])
    source_index, target_index = problem["edge_index"]
    edge_features = ops.Tensor(problem["edge_features"])

    x = ops.Tensor(problem["node_features"])
    for layer, aggregation in (("conv0", "multi"), ("conv1", "mean")):
        source = ops.gather_rows(x, source_index)
        target = ops.gather_rows(x, target_index)
        stacked = ops.concat([target, ops.sub(source, target), edge_features],
                             axis=-1)
        messages = ops.relu(ops.add(
            ops.matmul(stacked, params[f"{layer}.message.weight"]),
            params[f"{layer}.message.bias"]))
        if aggregation == "multi":
            aggregated = ops.concat([
                ops.segment_sum(messages, target_index, num_nodes),
                ops.segment_mean(messages, target_index, num_nodes),
                ops.segment_max(messages, target_index, num_nodes),
            ], axis=-1)
            aggregated = ops.add(
                ops.matmul(aggregated, params[f"{layer}.project.weight"]),
                params[f"{layer}.project.bias"])
        else:
            aggregated = ops.segment_mean(messages, target_index, num_nodes)
        x = ops.relu(ops.layer_norm(aggregated, params[f"{layer}.norm.gamma"],
                                    params[f"{layer}.norm.beta"]))

    graph_embedding = ops.segment_mean(x, problem["node_to_graph"], num_graphs)
    per_sample = ops.gather_rows(graph_embedding, problem["sample_graph_index"])
    h_a = _block(ops, params, "xa.0", ops.Tensor(problem["x_a"]))
    h_m = _block(ops, params, "xm.1",
                 _block(ops, params, "xm.0", ops.Tensor(problem["x_m"])))
    hidden = ops.concat([per_sample, h_a, h_m], axis=-1)
    hidden = _block(ops, params, "combined.1",
                    _block(ops, params, "combined.0", hidden))
    mu = ops.relu(ops.add(ops.matmul(hidden, params["mu_head.weight"]),
                          params["mu_head.bias"]))
    sigma = ops.softplus(ops.add(ops.matmul(hidden, params["sigma_head.weight"]),
                                 params["sigma_head.bias"]))
    mu = ops.reshape(mu, (mu.shape[0],))
    sigma = ops.reshape(sigma, (sigma.shape[0],))
    loss = ops.add(ops.mse_loss(mu, ops.Tensor(problem["y_mean"])),
                   ops.mse_loss(sigma, ops.Tensor(problem["y_std"])))
    nll = ops.gaussian_nll_loss(mu, sigma, ops.Tensor(problem["y_mean"]))
    return ops.add(loss, ops.mul(nll, ops.Tensor(0.1)))
