"""Central finite-difference gradient checking.

:func:`gradcheck` is the gate every operation in :mod:`repro.nn.functional`
must pass: it compares the analytic gradient produced by the operation-tape
engine against a central finite-difference estimate of
``d sum(f(x...)) / dx`` for every differentiable input.  The property suite
in ``tests/test_nn_gradcheck.py`` runs it over the full operation registry;
any new operation should be added there alongside its implementation.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.exceptions import GradcheckError
from repro.nn import functional as F
from repro.nn.tensor import Tensor

__all__ = ["gradcheck", "numeric_gradient"]


def numeric_gradient(function: Callable[..., Tensor],
                     arrays: Sequence[np.ndarray], index: int, *,
                     eps: float = 1e-6) -> np.ndarray:
    """Central finite-difference estimate of ``d sum(f) / d arrays[index]``.

    Every element of input ``index`` is perturbed by ``+/- eps`` in turn
    while the remaining inputs are held fixed.
    """
    arrays = [np.asarray(a, dtype=np.float64) for a in arrays]
    target = arrays[index]
    numeric = np.zeros_like(target)
    flat_numeric = numeric.ravel()

    def evaluate(perturbed: np.ndarray) -> float:
        inputs = [Tensor(perturbed if i == index else a)
                  for i, a in enumerate(arrays)]
        return float(function(*inputs).data.sum())

    for flat_index in range(target.size):
        plus = target.copy().ravel()
        minus = target.copy().ravel()
        plus[flat_index] += eps
        minus[flat_index] -= eps
        f_plus = evaluate(plus.reshape(target.shape))
        f_minus = evaluate(minus.reshape(target.shape))
        flat_numeric[flat_index] = (f_plus - f_minus) / (2.0 * eps)
    return numeric


def gradcheck(function: Callable[..., Tensor], *arrays: np.ndarray,
              eps: float = 1e-6, atol: float = 1e-6, rtol: float = 1e-6,
              raise_on_failure: bool = True) -> bool:
    """Verify the analytic gradients of ``function`` at the point ``arrays``.

    Parameters
    ----------
    function:
        Maps input tensors to an output tensor; its gradients are checked
        through the scalar objective ``sum(function(...))``.
    arrays:
        One NumPy array per input; every input is treated as differentiable.
    eps:
        Central-difference step.
    atol, rtol:
        Element-wise tolerances for comparing analytic against numeric
        gradients.
    raise_on_failure:
        When True (default) a mismatch raises
        :class:`~repro.exceptions.GradcheckError` describing the worst
        element; when False the function returns ``False`` instead.

    Returns
    -------
    bool
        True when every analytic gradient matches its finite-difference
        estimate within tolerance.
    """
    if not arrays:
        raise GradcheckError("gradcheck requires at least one input array")
    arrays = tuple(np.asarray(a, dtype=np.float64) for a in arrays)
    inputs = [Tensor(a.copy(), requires_grad=True) for a in arrays]
    output = function(*inputs)
    F.sum(output).backward()

    for index, tensor in enumerate(inputs):
        analytic = tensor.grad
        if analytic is None:
            analytic = np.zeros_like(tensor.data)
        numeric = numeric_gradient(function, arrays, index, eps=eps)
        error = np.abs(analytic - numeric)
        bound = atol + rtol * np.abs(numeric)
        if np.all(error <= bound):
            continue
        if not raise_on_failure:
            return False
        worst = np.unravel_index(int(np.argmax(error - bound)), error.shape)
        raise GradcheckError(
            f"gradient of input {index} fails finite-difference check at "
            f"element {tuple(int(i) for i in worst)}: analytic "
            f"{analytic[worst]:.6e} vs numeric {numeric[worst]:.6e} "
            f"(|diff| {error[worst]:.3e} > atol {atol:g} + rtol*|num| "
            f"{bound[worst]:.3e})")
    return True
