"""Operation-tape reverse-mode autodiff engine.

The forward pass records one :class:`Operation` node per primitive (created
through the single :func:`apply` entry point); :func:`backward` walks the
recorded graph in reverse topological order and routes gradients to the
operation inputs.  The engine owns every cross-cutting concern the per-op
backward closures of the seed implementation each re-implemented by hand:

* **un-broadcasting** -- operations whose forward broadcasts their operands
  (:attr:`Operation.broadcastable`) return raw gradients and the engine
  reduces them back to the operand shapes with :func:`unbroadcast`;
* **gradient accumulation** -- when a tensor feeds several consumers the
  engine sums the incoming gradients, allocating one owned buffer per fan-in
  point and accumulating in place afterwards (the seed closures allocated a
  fresh array per contribution);
* **tape construction** -- nodes are only recorded while gradients are
  enabled (:func:`no_grad`) *and* at least one input is connected to a leaf
  that requires gradients, so constant subgraphs never pin memory;
* **buffer release** -- after a backward pass each visited operation drops
  its saved activations (:meth:`Operation.release`) instead of pinning the
  whole graph until the output tensor dies; a second backward through a
  released operation raises a typed :class:`~repro.exceptions.AutodiffError`
  unless the first pass was run with ``retain_graph=True``.

The gradient-enabled flag lives in a :class:`contextvars.ContextVar`, so
``no_grad`` is scoped per thread (and per asyncio task): inference running on
one solve-server worker thread cannot disable the tape of a training step on
another.
"""

from __future__ import annotations

import contextvars
from contextlib import contextmanager
from typing import Iterator

import numpy as np

from repro.exceptions import AutodiffError

__all__ = [
    "Operation",
    "apply",
    "backward",
    "toposort",
    "unbroadcast",
    "no_grad",
    "is_grad_enabled",
    "backward_stats",
    "reset_backward_stats",
]

#: Per-context (hence per-thread / per-task) tape switch.  Each thread starts
#: from the default ``True``; ``no_grad`` only mutates the caller's context.
_GRAD_ENABLED: contextvars.ContextVar[bool] = contextvars.ContextVar(
    "repro_nn_grad_enabled", default=True)

#: Tensor class registered by :mod:`repro.nn.tensor` (avoids a circular
#: import: tensor -> autograd at module level, autograd -> tensor at runtime).
_TENSOR_TYPE: type | None = None


def _register_tensor_type(cls: type) -> None:
    global _TENSOR_TYPE
    _TENSOR_TYPE = cls


@contextmanager
def no_grad() -> Iterator[None]:
    """Context manager disabling tape construction (inference mode).

    The switch is stored in a :class:`contextvars.ContextVar`, so disabling
    the tape in one thread does not affect operations recorded concurrently
    by other threads (the solve server runs surrogate inference on worker
    threads while training may be in flight elsewhere).
    """
    token = _GRAD_ENABLED.set(False)
    try:
        yield
    finally:
        _GRAD_ENABLED.reset(token)


def is_grad_enabled() -> bool:
    """Whether operations currently record the autodiff tape (this context)."""
    return _GRAD_ENABLED.get()


def unbroadcast(gradient: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``gradient`` so that it matches ``shape`` after broadcasting."""
    if gradient.shape == shape:
        return gradient
    # Sum over leading dimensions added by broadcasting.
    while gradient.ndim > len(shape):
        gradient = gradient.sum(axis=0)
    # Sum over axes that were of size 1 in the original operand.
    for axis, dim in enumerate(shape):
        if dim == 1 and gradient.shape[axis] != 1:
            gradient = gradient.sum(axis=axis, keepdims=True)
    return gradient.reshape(shape)


class Operation:
    """Base class of every differentiable primitive.

    A subclass implements

    * :meth:`forward`, computing the output array from the raw input arrays
      and saving whatever the backward pass needs as instance attributes, and
    * :meth:`backward`, returning the gradient with respect to input
      ``index`` given the upstream gradient of the output (or ``None`` when
      the input is not differentiable, e.g. integer indices).

    Instances are single use: :func:`apply` runs the forward pass, binds the
    input tensors to :attr:`inputs` and records the node on the output
    tensor.  Shape bookkeeping for broadcasting operands is *not* the
    subclass's job -- set :attr:`broadcastable` and the engine reduces the
    returned gradients to the operand shapes.
    """

    #: When True the engine un-broadcasts parent gradients to operand shapes.
    broadcastable = False
    #: Parent tensors, bound by :func:`apply` when the node is recorded.
    inputs: tuple = ()
    #: Set by :meth:`release` once the saved buffers have been dropped.
    _released = False

    def forward(self, *arrays: np.ndarray) -> np.ndarray:
        """Compute the output array (must be overridden)."""
        raise NotImplementedError

    def backward(self, grad: np.ndarray, index: int) -> np.ndarray | None:
        """Gradient of the output with respect to input ``index``."""
        raise NotImplementedError

    def release(self) -> None:
        """Drop saved activations and graph edges after a backward pass.

        Clearing ``inputs`` severs the tape upstream of this node, so the
        whole saved subgraph becomes collectable as soon as the caller drops
        the loss tensor -- the engine calls this after visiting a node unless
        ``retain_graph=True`` was requested.
        """
        state = self.__dict__
        state.clear()
        state["_released"] = True

    @property
    def name(self) -> str:
        """Operation name used in error messages."""
        return type(self).__name__


def apply(operation: Operation, *inputs) -> "np.ndarray":
    """Run ``operation`` forward and record it on the tape.

    This is the single entry point through which every function in
    :mod:`repro.nn.functional` creates graph nodes.  Inputs are coerced to
    tensors; the node is recorded only when gradients are enabled in the
    current context *and* at least one input is connected to the tape (it
    requires gradients itself or was produced by a recorded operation).
    """
    tensor_cls = _TENSOR_TYPE
    tensors = tuple(
        value if isinstance(value, tensor_cls) else tensor_cls(value)
        for value in inputs)
    out_data = operation.forward(*(t.data for t in tensors))
    result = tensor_cls(out_data)
    if _GRAD_ENABLED.get() and any(
            t.requires_grad or t._op is not None for t in tensors):
        operation.inputs = tensors
        result._op = operation
    return result


def toposort(root) -> list:
    """Tensors reachable from ``root`` in topological order (parents first).

    Iterative depth-first walk over the recorded operation nodes; mirrors the
    seed implementation's traversal so gradient accumulation order (and hence
    bit-exact results) is preserved.
    """
    order: list = []
    visited: set[int] = set()
    stack: list[tuple[object, bool]] = [(root, False)]
    while stack:
        node, processed = stack.pop()
        if processed:
            order.append(node)
            continue
        if id(node) in visited:
            continue
        visited.add(id(node))
        stack.append((node, True))
        operation = node._op
        if operation is not None:
            for parent in operation.inputs:
                if id(parent) not in visited:
                    stack.append((parent, False))
    return order


class _BackwardStats:
    """Counters describing the most recent backward passes.

    ``buffer_allocations`` counts fresh gradient-buffer allocations made at
    fan-in points (a tensor consumed by several operations); once a buffer is
    owned, further contributions accumulate in place
    (``inplace_accumulations``).  ``leaf_donations`` counts owned buffers
    handed to ``Tensor.grad`` without the defensive copy the seed
    implementation always paid.  The counters are process-wide diagnostics
    for the autograd benchmark, not synchronised across threads.
    """

    __slots__ = ("buffer_allocations", "inplace_accumulations", "leaf_donations")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.buffer_allocations = 0
        self.inplace_accumulations = 0
        self.leaf_donations = 0

    def as_dict(self) -> dict[str, int]:
        return {"buffer_allocations": self.buffer_allocations,
                "inplace_accumulations": self.inplace_accumulations,
                "leaf_donations": self.leaf_donations}


_STATS = _BackwardStats()


def backward_stats() -> dict[str, int]:
    """Snapshot of the accumulation counters since the last reset."""
    return _STATS.as_dict()


def reset_backward_stats() -> None:
    """Zero the accumulation counters (used by tests and the benchmark)."""
    _STATS.reset()


def backward(root, gradient: np.ndarray | float | None = None, *,
             retain_graph: bool = False) -> None:
    """Backpropagate from ``root`` through the recorded operation graph.

    Parameters
    ----------
    root:
        Tensor to differentiate; gradients are accumulated into the ``grad``
        attribute of every reachable tensor with ``requires_grad=True``.
    gradient:
        Upstream gradient; defaults to 1 for scalar tensors (the usual loss
        case) and must be supplied explicitly otherwise.
    retain_graph:
        Keep the saved activations after the pass so that a second backward
        through the same graph is possible.  By default buffers are released
        as soon as each node has propagated its gradient, and a repeated
        backward raises :class:`~repro.exceptions.AutodiffError`.
    """
    data = root.data
    owned_seed = False
    if gradient is None:
        if data.size != 1:
            raise AutodiffError(
                "backward() without an explicit gradient requires a scalar "
                f"tensor, got shape {data.shape}")
        gradient = np.ones_like(data)
        owned_seed = True
    gradient = np.asarray(gradient, dtype=np.float64)
    if gradient.shape != data.shape:
        gradient = np.broadcast_to(gradient, data.shape).copy()
        owned_seed = True

    order = toposort(root)
    # id(tensor) -> [gradient buffer, engine owns the buffer].  Buffers start
    # un-owned (they may alias operation internals or views of the upstream
    # gradient); ownership is taken at the first fan-in accumulation.
    grad_map: dict[int, list] = {id(root): [gradient, owned_seed]}
    for node in reversed(order):
        entry = grad_map.pop(id(node), None)
        if entry is None:
            # Constant subgraph (pruned) or unreachable from the seed.
            continue
        node_grad, owned = entry
        if node.requires_grad:
            node.accumulate_grad(node_grad, _owned=owned)
            if owned:
                _STATS.leaf_donations += 1
        operation = node._op
        if operation is None:
            continue
        if operation._released:
            raise AutodiffError(
                f"cannot backpropagate through {operation.name}: its saved "
                "buffers were already released by a previous backward pass; "
                "call backward(retain_graph=True) on the first pass to keep "
                "them")
        for index, parent in enumerate(operation.inputs):
            if not (parent.requires_grad or parent._op is not None):
                continue  # nothing upstream needs this gradient
            parent_grad = operation.backward(node_grad, index)
            if parent_grad is None:
                continue
            parent_grad = np.asarray(parent_grad, dtype=np.float64)
            if operation.broadcastable:
                parent_grad = unbroadcast(parent_grad, parent.data.shape)
            existing = grad_map.get(id(parent))
            if existing is None:
                grad_map[id(parent)] = [parent_grad, False]
            elif existing[1]:
                existing[0] += parent_grad
                _STATS.inplace_accumulations += 1
            else:
                # First fan-in: allocate one owned buffer, accumulate in
                # place from here on.
                existing[0] = existing[0] + parent_grad
                existing[1] = True
                _STATS.buffer_allocations += 1
        if not retain_graph:
            operation.release()
