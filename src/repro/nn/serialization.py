"""Persistence of model parameters.

State dictionaries produced by :meth:`repro.nn.layers.Module.state_dict` are
plain ``name -> ndarray`` mappings; they are stored as compressed ``.npz``
archives so that a trained surrogate (Pre-BO or BO-enhanced) can be saved,
reloaded and reused without retraining.
"""

from __future__ import annotations

import os

import numpy as np

from repro.exceptions import SurrogateError

__all__ = ["save_state_dict", "load_state_dict"]


def save_state_dict(state: dict[str, np.ndarray], path: str | os.PathLike, *,
                    atomic: bool = False) -> str:
    """Write a state dictionary to ``path`` (``.npz`` appended if missing).

    With ``atomic=True`` the archive is written to a same-directory temporary
    file, flushed to disk, and moved into place with :func:`os.replace`, so a
    crash mid-write can never leave a truncated archive at ``path`` — the
    contract the online trainer's checkpoints and the model registry's
    publishes rely on.
    """
    if not state:
        raise SurrogateError("refusing to save an empty state dict")
    path = os.fspath(path)
    if not path.endswith(".npz"):
        path = path + ".npz"
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    if not atomic:
        np.savez_compressed(path, **state)
        return path
    temp_path = path + f".tmp-{os.getpid()}"
    try:
        with open(temp_path, "wb") as handle:
            np.savez_compressed(handle, **state)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_path, path)
    finally:
        if os.path.exists(temp_path):
            os.unlink(temp_path)
    return path


def load_state_dict(path: str | os.PathLike) -> dict[str, np.ndarray]:
    """Load a state dictionary previously written by :func:`save_state_dict`."""
    path = os.fspath(path)
    if not os.path.exists(path) and os.path.exists(path + ".npz"):
        path = path + ".npz"
    if not os.path.exists(path):
        raise SurrogateError(f"no such state file: {path}")
    with np.load(path) as archive:
        return {name: np.asarray(archive[name]) for name in archive.files}
