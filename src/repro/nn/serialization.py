"""Persistence of model parameters.

State dictionaries produced by :meth:`repro.nn.layers.Module.state_dict` are
plain ``name -> ndarray`` mappings; they are stored as compressed ``.npz``
archives so that a trained surrogate (Pre-BO or BO-enhanced) can be saved,
reloaded and reused without retraining.
"""

from __future__ import annotations

import os

import numpy as np

from repro.exceptions import SurrogateError

__all__ = ["save_state_dict", "load_state_dict"]


def save_state_dict(state: dict[str, np.ndarray], path: str | os.PathLike) -> str:
    """Write a state dictionary to ``path`` (``.npz`` appended if missing)."""
    if not state:
        raise SurrogateError("refusing to save an empty state dict")
    path = os.fspath(path)
    if not path.endswith(".npz"):
        path = path + ".npz"
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    np.savez_compressed(path, **state)
    return path


def load_state_dict(path: str | os.PathLike) -> dict[str, np.ndarray]:
    """Load a state dictionary previously written by :func:`save_state_dict`."""
    path = os.fspath(path)
    if not os.path.exists(path) and os.path.exists(path + ".npz"):
        path = path + ".npz"
    if not os.path.exists(path):
        raise SurrogateError(f"no such state file: {path}")
    with np.load(path) as archive:
        return {name: np.asarray(archive[name]) for name in archive.files}
