"""Parameter initialisers.

Glorot/Xavier and He/Kaiming uniform initialisation for the linear layers of
the surrogate, plus trivial constant initialisers for biases and the affine
parameters of layer normalisation.  All initialisers take an explicit
:class:`numpy.random.Generator` so model construction is reproducible.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ParameterError

__all__ = ["xavier_uniform", "kaiming_uniform", "zeros", "ones"]


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator,
                   gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier uniform initialisation ``U(-a, a)`` with
    ``a = gain * sqrt(6 / (fan_in + fan_out))``."""
    if len(shape) < 2:
        fan_in = fan_out = int(np.prod(shape)) if shape else 1
    else:
        fan_in, fan_out = shape[0], shape[1]
    if fan_in + fan_out <= 0:
        raise ParameterError(f"invalid shape for initialisation: {shape}")
    limit = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def kaiming_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He/Kaiming uniform initialisation suited to ReLU activations."""
    fan_in = shape[0] if len(shape) >= 1 else 1
    if fan_in <= 0:
        raise ParameterError(f"invalid shape for initialisation: {shape}")
    limit = np.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=shape)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    """All-zero initialisation (biases)."""
    return np.zeros(shape, dtype=np.float64)


def ones(shape: tuple[int, ...]) -> np.ndarray:
    """All-one initialisation (layer-norm gains)."""
    return np.ones(shape, dtype=np.float64)
