"""Optimisers: SGD (with momentum) and Adam (with decoupled weight decay).

The paper trains the surrogate with Adam; weight decay is one of the
hyperparameters explored during HPO (the selected configuration uses a decay
of 1, which corresponds to strong decoupled regularisation).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.exceptions import ParameterError
from repro.nn.tensor import Tensor

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer(ABC):
    """Common optimiser interface."""

    def __init__(self, parameters: list[Tensor], lr: float) -> None:
        if lr <= 0:
            raise ParameterError(f"learning rate must be positive, got {lr}")
        self.parameters = [p for p in parameters if p.requires_grad]
        if not self.parameters:
            raise ParameterError("optimizer received no trainable parameters")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        """Clear the gradients of all managed parameters."""
        for parameter in self.parameters:
            parameter.zero_grad()

    @abstractmethod
    def step(self) -> None:
        """Apply one update using the currently accumulated gradients."""


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, parameters: list[Tensor], lr: float = 1e-2, *,
                 momentum: float = 0.0, weight_decay: float = 0.0) -> None:
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ParameterError(f"momentum must lie in [0, 1), got {momentum}")
        if weight_decay < 0.0:
            raise ParameterError(f"weight_decay must be >= 0, got {weight_decay}")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for parameter, velocity in zip(self.parameters, self._velocity):
            if parameter.grad is None:
                # Deterministic skip after a partial backward (e.g. a loss
                # through only one head): neither weights, weight decay nor
                # momentum advance for untouched parameters.
                continue
            gradient = parameter.grad
            if self.weight_decay:
                gradient = gradient + self.weight_decay * parameter.data
            if self.momentum:
                velocity *= self.momentum
                velocity += gradient
                update = velocity
            else:
                update = gradient
            parameter.data -= self.lr * update


class Adam(Optimizer):
    """Adam optimiser with decoupled (AdamW-style) weight decay.

    Parameters
    ----------
    parameters:
        Trainable tensors.
    lr:
        Learning rate (the paper's selected value is ``1.848e-3``).
    betas:
        Exponential decay rates of the first and second moment estimates.
    eps:
        Numerical stabiliser added to the denominator.
    weight_decay:
        Decoupled weight-decay coefficient applied directly to the weights.
    """

    def __init__(self, parameters: list[Tensor], lr: float = 1e-3, *,
                 betas: tuple[float, float] = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0) -> None:
        super().__init__(parameters, lr)
        beta1, beta2 = betas
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ParameterError(f"betas must lie in [0, 1), got {betas}")
        if eps <= 0.0:
            raise ParameterError(f"eps must be positive, got {eps}")
        if weight_decay < 0.0:
            raise ParameterError(f"weight_decay must be >= 0, got {weight_decay}")
        self.betas = (beta1, beta2)
        self.eps = eps
        self.weight_decay = weight_decay
        # Bias correction must count the updates each parameter actually
        # received: after a partial backward (loss through only one head)
        # parameters with ``grad is None`` are skipped deterministically --
        # their moments, step counts and weights all stay untouched, so a
        # later full backward resumes with the correct correction.
        self._step_counts = [0] * len(self.parameters)
        self._first_moment = [np.zeros_like(p.data) for p in self.parameters]
        self._second_moment = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        beta1, beta2 = self.betas
        for index, (parameter, first, second) in enumerate(
                zip(self.parameters, self._first_moment, self._second_moment)):
            if parameter.grad is None:
                continue
            self._step_counts[index] += 1
            bias_correction1 = 1.0 - beta1 ** self._step_counts[index]
            bias_correction2 = 1.0 - beta2 ** self._step_counts[index]
            gradient = parameter.grad
            first *= beta1
            first += (1.0 - beta1) * gradient
            second *= beta2
            second += (1.0 - beta2) * gradient ** 2
            corrected_first = first / bias_correction1
            corrected_second = second / bias_correction2
            update = corrected_first / (np.sqrt(corrected_second) + self.eps)
            if self.weight_decay:
                # Decoupled weight decay (AdamW): shrink weights directly.
                parameter.data -= self.lr * self.weight_decay * parameter.data
            parameter.data -= self.lr * update
