"""Minimal reverse-mode automatic differentiation and neural-network layers.

The paper's surrogate is a graph neural network trained with Adam; no deep
learning framework is assumed to be available, so this package provides the
required machinery from scratch on top of NumPy:

* :mod:`repro.nn.autograd` -- the operation-tape graph engine:
  :class:`Operation` base class, the :func:`apply` recording entry point,
  thread-safe ``no_grad``, topological backward walk with gradient
  accumulation, un-broadcasting and buffer release;
* :mod:`repro.nn.tensor` -- a :class:`Tensor` wrapping an ``ndarray`` with a
  dynamic tape for reverse-mode differentiation;
* :mod:`repro.nn.functional` -- differentiable operations (matmul, ReLU,
  softplus, layer norm, dropout, segment reductions for message passing, MSE),
  each an :class:`Operation` subclass;
* :mod:`repro.nn.gradcheck` -- central finite-difference gradient checking;
* :mod:`repro.nn.layers` -- ``Module`` base class, ``Linear``, ``MLP``,
  ``LayerNorm``, ``Dropout``, ``Sequential``;
* :mod:`repro.nn.optim` -- SGD and Adam (with decoupled weight decay);
* :mod:`repro.nn.init` -- Glorot/He initialisers;
* :mod:`repro.nn.serialization` -- ``state_dict`` save/load round-trips.

The implementation favours clarity and testability over raw speed: the
surrogate models used in the experiments have at most a few hundred thousand
parameters and train in seconds to minutes on a laptop CPU.
"""

from repro.nn.tensor import Tensor, no_grad
from repro.nn.autograd import Operation, apply, is_grad_enabled
from repro.nn.gradcheck import gradcheck
from repro.nn import functional
from repro.nn.layers import (
    Module,
    Linear,
    Sequential,
    MLP,
    LayerNorm,
    Dropout,
    ReLU,
    Softplus,
)
from repro.nn.optim import SGD, Adam, Optimizer
from repro.nn.init import xavier_uniform, kaiming_uniform, zeros, ones
from repro.nn.serialization import save_state_dict, load_state_dict

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "Operation",
    "apply",
    "gradcheck",
    "functional",
    "Module",
    "Linear",
    "Sequential",
    "MLP",
    "LayerNorm",
    "Dropout",
    "ReLU",
    "Softplus",
    "Optimizer",
    "SGD",
    "Adam",
    "xavier_uniform",
    "kaiming_uniform",
    "zeros",
    "ones",
    "save_state_dict",
    "load_state_dict",
]
