"""Differentiable operations on :class:`~repro.nn.tensor.Tensor`.

Each function computes the forward value eagerly and registers a backward
closure returning the gradients with respect to its inputs.  Broadcasting in
the element-wise operations is supported; the backward pass reduces gradients
back to the original operand shapes (:func:`_unbroadcast`).

Beyond the usual dense operations, the module provides the *segment*
reductions (:func:`segment_sum`, :func:`segment_mean`, :func:`segment_max`)
used by the message-passing layers to aggregate edge messages per target node
and node embeddings per graph.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import AutodiffError
from repro.nn.tensor import Tensor, _ensure_tensor, is_grad_enabled

__all__ = [
    "add", "sub", "mul", "div", "neg", "matmul", "pow_scalar",
    "sum", "mean", "reshape", "concat", "stack",
    "relu", "leaky_relu", "sigmoid", "tanh", "exp", "log", "softplus",
    "dropout", "layer_norm",
    "gather_rows", "segment_sum", "segment_mean", "segment_max",
    "mse_loss", "gaussian_nll_loss",
]


def _unbroadcast(gradient: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``gradient`` so that it matches ``shape`` after broadcasting."""
    if gradient.shape == shape:
        return gradient
    # Sum over leading dimensions added by broadcasting.
    while gradient.ndim > len(shape):
        gradient = gradient.sum(axis=0)
    # Sum over axes that were of size 1 in the original operand.
    for axis, dim in enumerate(shape):
        if dim == 1 and gradient.shape[axis] != 1:
            gradient = gradient.sum(axis=axis, keepdims=True)
    return gradient.reshape(shape)


def _make(data: np.ndarray, parents, backward_fn) -> Tensor:
    if is_grad_enabled():
        return Tensor(data, parents=parents, backward_fn=backward_fn)
    return Tensor(data)


# --------------------------------------------------------------------------
# Arithmetic
# --------------------------------------------------------------------------

def add(a: Tensor, b: Tensor) -> Tensor:
    """Element-wise addition with broadcasting."""
    a, b = _ensure_tensor(a), _ensure_tensor(b)
    out_data = a.data + b.data

    def backward(grad):
        return _unbroadcast(grad, a.data.shape), _unbroadcast(grad, b.data.shape)

    return _make(out_data, (a, b), backward)


def sub(a: Tensor, b: Tensor) -> Tensor:
    """Element-wise subtraction with broadcasting."""
    a, b = _ensure_tensor(a), _ensure_tensor(b)
    out_data = a.data - b.data

    def backward(grad):
        return _unbroadcast(grad, a.data.shape), _unbroadcast(-grad, b.data.shape)

    return _make(out_data, (a, b), backward)


def mul(a: Tensor, b: Tensor) -> Tensor:
    """Element-wise multiplication with broadcasting."""
    a, b = _ensure_tensor(a), _ensure_tensor(b)
    out_data = a.data * b.data

    def backward(grad):
        return (_unbroadcast(grad * b.data, a.data.shape),
                _unbroadcast(grad * a.data, b.data.shape))

    return _make(out_data, (a, b), backward)


def div(a: Tensor, b: Tensor) -> Tensor:
    """Element-wise division with broadcasting."""
    a, b = _ensure_tensor(a), _ensure_tensor(b)
    out_data = a.data / b.data

    def backward(grad):
        return (_unbroadcast(grad / b.data, a.data.shape),
                _unbroadcast(-grad * a.data / (b.data ** 2), b.data.shape))

    return _make(out_data, (a, b), backward)


def neg(a: Tensor) -> Tensor:
    """Element-wise negation."""
    a = _ensure_tensor(a)

    def backward(grad):
        return (-grad,)

    return _make(-a.data, (a,), backward)


def pow_scalar(a: Tensor, exponent: float) -> Tensor:
    """Element-wise power with a constant exponent."""
    a = _ensure_tensor(a)
    out_data = a.data ** exponent

    def backward(grad):
        return (grad * exponent * a.data ** (exponent - 1.0),)

    return _make(out_data, (a,), backward)


def matmul(a: Tensor, b: Tensor) -> Tensor:
    """Matrix multiplication (2-D x 2-D, or 1-D promoted on either side)."""
    a, b = _ensure_tensor(a), _ensure_tensor(b)
    out_data = a.data @ b.data

    def backward(grad):
        a_data, b_data = a.data, b.data
        grad = np.asarray(grad, dtype=np.float64)
        if a_data.ndim == 1 and b_data.ndim == 2:
            grad_a = grad @ b_data.T
            grad_b = np.outer(a_data, grad)
        elif a_data.ndim == 2 and b_data.ndim == 1:
            grad_a = np.outer(grad, b_data)
            grad_b = a_data.T @ grad
        elif a_data.ndim == 1 and b_data.ndim == 1:
            grad_a = grad * b_data
            grad_b = grad * a_data
        else:
            grad_a = grad @ b_data.T
            grad_b = a_data.T @ grad
        return grad_a, grad_b

    return _make(out_data, (a, b), backward)


# --------------------------------------------------------------------------
# Reductions and shape manipulation
# --------------------------------------------------------------------------

def sum(a: Tensor, axis=None, keepdims: bool = False) -> Tensor:  # noqa: A001
    """Sum reduction."""
    a = _ensure_tensor(a)
    out_data = a.data.sum(axis=axis, keepdims=keepdims)

    def backward(grad):
        grad = np.asarray(grad, dtype=np.float64)
        if axis is None:
            return (np.broadcast_to(grad, a.data.shape).copy(),)
        if not keepdims:
            grad = np.expand_dims(grad, axis=axis)
        return (np.broadcast_to(grad, a.data.shape).copy(),)

    return _make(out_data, (a,), backward)


def mean(a: Tensor, axis=None, keepdims: bool = False) -> Tensor:
    """Mean reduction."""
    a = _ensure_tensor(a)
    out_data = a.data.mean(axis=axis, keepdims=keepdims)
    if axis is None:
        count = a.data.size
    else:
        count = a.data.shape[axis]

    def backward(grad):
        grad = np.asarray(grad, dtype=np.float64) / count
        if axis is None:
            return (np.broadcast_to(grad, a.data.shape).copy(),)
        if not keepdims:
            grad = np.expand_dims(grad, axis=axis)
        return (np.broadcast_to(grad, a.data.shape).copy(),)

    return _make(out_data, (a,), backward)


def reshape(a: Tensor, shape: tuple[int, ...]) -> Tensor:
    """Reshape preserving the element order."""
    a = _ensure_tensor(a)
    out_data = a.data.reshape(shape)

    def backward(grad):
        return (np.asarray(grad).reshape(a.data.shape),)

    return _make(out_data, (a,), backward)


def concat(tensors: list[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis``."""
    tensors = [_ensure_tensor(t) for t in tensors]
    if not tensors:
        raise AutodiffError("concat() requires at least one tensor")
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad):
        grad = np.asarray(grad, dtype=np.float64)
        slices = []
        for index in range(len(tensors)):
            selector = [slice(None)] * grad.ndim
            selector[axis] = slice(offsets[index], offsets[index + 1])
            slices.append(grad[tuple(selector)])
        return tuple(slices)

    return _make(out_data, tuple(tensors), backward)


def stack(tensors: list[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis."""
    tensors = [_ensure_tensor(t) for t in tensors]
    if not tensors:
        raise AutodiffError("stack() requires at least one tensor")
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad):
        grad = np.asarray(grad, dtype=np.float64)
        return tuple(np.take(grad, index, axis=axis) for index in range(len(tensors)))

    return _make(out_data, tuple(tensors), backward)


# --------------------------------------------------------------------------
# Non-linearities
# --------------------------------------------------------------------------

def relu(a: Tensor) -> Tensor:
    """Rectified linear unit."""
    a = _ensure_tensor(a)
    mask = a.data > 0
    out_data = a.data * mask

    def backward(grad):
        return (grad * mask,)

    return _make(out_data, (a,), backward)


def leaky_relu(a: Tensor, negative_slope: float = 0.2) -> Tensor:
    """Leaky ReLU (used inside the GATv2-style attention layer)."""
    a = _ensure_tensor(a)
    mask = a.data > 0
    out_data = np.where(mask, a.data, negative_slope * a.data)

    def backward(grad):
        return (grad * np.where(mask, 1.0, negative_slope),)

    return _make(out_data, (a,), backward)


def sigmoid(a: Tensor) -> Tensor:
    """Logistic sigmoid."""
    a = _ensure_tensor(a)
    out_data = 1.0 / (1.0 + np.exp(-a.data))

    def backward(grad):
        return (grad * out_data * (1.0 - out_data),)

    return _make(out_data, (a,), backward)


def tanh(a: Tensor) -> Tensor:
    """Hyperbolic tangent."""
    a = _ensure_tensor(a)
    out_data = np.tanh(a.data)

    def backward(grad):
        return (grad * (1.0 - out_data ** 2),)

    return _make(out_data, (a,), backward)


def exp(a: Tensor) -> Tensor:
    """Element-wise exponential."""
    a = _ensure_tensor(a)
    out_data = np.exp(a.data)

    def backward(grad):
        return (grad * out_data,)

    return _make(out_data, (a,), backward)


def log(a: Tensor) -> Tensor:
    """Element-wise natural logarithm."""
    a = _ensure_tensor(a)
    out_data = np.log(a.data)

    def backward(grad):
        return (grad / a.data,)

    return _make(out_data, (a,), backward)


def softplus(a: Tensor) -> Tensor:
    """Numerically stable softplus ``ln(1 + e^x)`` (the sigma head of Eq. 1)."""
    a = _ensure_tensor(a)
    out_data = np.logaddexp(0.0, a.data)
    sig = 1.0 / (1.0 + np.exp(-a.data))

    def backward(grad):
        return (grad * sig,)

    return _make(out_data, (a,), backward)


# --------------------------------------------------------------------------
# Regularisation and normalisation
# --------------------------------------------------------------------------

def dropout(a: Tensor, p: float, *, training: bool,
            rng: np.random.Generator | None = None) -> Tensor:
    """Inverted dropout.

    During training each element is zeroed with probability ``p`` and the
    survivors are scaled by ``1 / (1 - p)``; at evaluation time the input is
    returned unchanged.
    """
    a = _ensure_tensor(a)
    if not 0.0 <= p < 1.0:
        raise AutodiffError(f"dropout probability must lie in [0, 1), got {p}")
    if not training or p == 0.0:
        def backward_identity(grad):
            return (grad,)

        return _make(a.data.copy(), (a,), backward_identity)
    generator = rng if rng is not None else np.random.default_rng()
    mask = (generator.random(a.data.shape) >= p) / (1.0 - p)
    out_data = a.data * mask

    def backward(grad):
        return (grad * mask,)

    return _make(out_data, (a,), backward)


def layer_norm(a: Tensor, gamma: Tensor, beta: Tensor, *, eps: float = 1e-5) -> Tensor:
    """Layer normalisation over the last dimension.

    ``y = gamma * (x - mean) / sqrt(var + eps) + beta`` with the statistics
    computed per row (per node / per sample), as used in both the message
    passing layers and the fully connected stacks of the surrogate.
    """
    a = _ensure_tensor(a)
    gamma = _ensure_tensor(gamma)
    beta = _ensure_tensor(beta)
    mu = a.data.mean(axis=-1, keepdims=True)
    var = a.data.var(axis=-1, keepdims=True)
    inv_std = 1.0 / np.sqrt(var + eps)
    normalised = (a.data - mu) * inv_std
    out_data = gamma.data * normalised + beta.data

    def backward(grad):
        grad = np.asarray(grad, dtype=np.float64)
        grad_gamma = _unbroadcast(grad * normalised, gamma.data.shape)
        grad_beta = _unbroadcast(grad, beta.data.shape)
        grad_normalised = grad * gamma.data
        # Standard layer-norm backward (per-row statistics).
        grad_a = (grad_normalised
                  - grad_normalised.mean(axis=-1, keepdims=True)
                  - normalised * (grad_normalised * normalised).mean(axis=-1, keepdims=True)
                  ) * inv_std
        return grad_a, grad_gamma, grad_beta

    return _make(out_data, (a, gamma, beta), backward)


# --------------------------------------------------------------------------
# Indexing and segment reductions (message passing primitives)
# --------------------------------------------------------------------------

def gather_rows(a: Tensor, indices: np.ndarray) -> Tensor:
    """Select rows ``a[indices]`` (differentiable scatter-add in the backward)."""
    a = _ensure_tensor(a)
    indices = np.asarray(indices, dtype=np.int64)
    out_data = a.data[indices]

    def backward(grad):
        grad_a = np.zeros_like(a.data)
        np.add.at(grad_a, indices, np.asarray(grad, dtype=np.float64))
        return (grad_a,)

    return _make(out_data, (a,), backward)


def segment_sum(a: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Sum rows of ``a`` into ``num_segments`` buckets given by ``segment_ids``."""
    a = _ensure_tensor(a)
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    if segment_ids.shape[0] != a.data.shape[0]:
        raise AutodiffError(
            f"segment_ids length {segment_ids.shape[0]} does not match rows "
            f"{a.data.shape[0]}")
    out_shape = (num_segments,) + a.data.shape[1:]
    out_data = np.zeros(out_shape, dtype=np.float64)
    np.add.at(out_data, segment_ids, a.data)

    def backward(grad):
        return (np.asarray(grad, dtype=np.float64)[segment_ids],)

    return _make(out_data, (a,), backward)


def segment_mean(a: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Mean of rows per segment (empty segments yield zeros)."""
    a = _ensure_tensor(a)
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    counts = np.bincount(segment_ids, minlength=num_segments).astype(np.float64)
    safe_counts = np.maximum(counts, 1.0)
    summed = segment_sum(a, segment_ids, num_segments)
    scale = Tensor((1.0 / safe_counts)[:, None] if a.data.ndim > 1 else 1.0 / safe_counts)
    return mul(summed, scale)


def segment_max(a: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Maximum of rows per segment (empty segments yield zeros).

    The gradient flows only to the element that attained the maximum in each
    segment/feature pair, matching the convention of deep-learning frameworks.
    """
    a = _ensure_tensor(a)
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    feature_shape = a.data.shape[1:]
    out_data = np.full((num_segments,) + feature_shape, -np.inf, dtype=np.float64)
    np.maximum.at(out_data, segment_ids, a.data)
    empty = ~np.isin(np.arange(num_segments), segment_ids)
    if empty.any():
        out_data[empty] = 0.0

    # Winner mask: an element wins if it equals the segment maximum; ties share
    # the gradient equally.
    winners = (a.data == out_data[segment_ids]).astype(np.float64)
    winner_counts = np.zeros((num_segments,) + feature_shape, dtype=np.float64)
    np.add.at(winner_counts, segment_ids, winners)
    winner_counts = np.maximum(winner_counts, 1.0)

    def backward(grad):
        grad = np.asarray(grad, dtype=np.float64)
        return (winners * (grad / winner_counts)[segment_ids],)

    return _make(out_data, (a,), backward)


# --------------------------------------------------------------------------
# Losses
# --------------------------------------------------------------------------

def mse_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean squared error."""
    prediction = _ensure_tensor(prediction)
    target = _ensure_tensor(target)
    difference = sub(prediction, target)
    return mean(mul(difference, difference))


def gaussian_nll_loss(mu: Tensor, sigma: Tensor, target: Tensor, *,
                      eps: float = 1e-6) -> Tensor:
    """Gaussian negative log-likelihood (the alternative objective of Sec. 3.1).

    ``0.5 * (log(sigma^2) + (target - mu)^2 / sigma^2)`` averaged over the
    batch; ``eps`` guards against the numerical instability for tiny sigma the
    paper mentions as the reason for preferring the MSE objective.
    """
    mu = _ensure_tensor(mu)
    sigma = _ensure_tensor(sigma)
    target = _ensure_tensor(target)
    variance = add(mul(sigma, sigma), Tensor(eps))
    residual = sub(target, mu)
    quadratic = div(mul(residual, residual), variance)
    return mean(mul(add(log(variance), quadratic), Tensor(0.5)))
