"""Differentiable operations on :class:`~repro.nn.tensor.Tensor`.

Every primitive is an :class:`~repro.nn.autograd.Operation` subclass: the
``forward`` method computes the output array eagerly (saving whatever the
backward pass needs as instance attributes) and ``backward(grad, index)``
returns the gradient with respect to one input.  The module-level functions
are thin wrappers that route through the single
:func:`repro.nn.autograd.apply` entry point, which records the node on the
tape; the graph engine owns the cross-cutting concerns (un-broadcasting,
gradient accumulation, topological walk, buffer release), so operations with
broadcasting semantics simply declare ``broadcastable = True`` and return raw
gradients.

Beyond the usual dense operations, the module provides the *segment*
reductions (:func:`segment_sum`, :func:`segment_mean`, :func:`segment_max`)
used by the message-passing layers to aggregate edge messages per target node
and node embeddings per graph.

Adding a new operation::

    class Square(Operation):
        def forward(self, a):
            self.a = a
            return a * a

        def backward(self, grad, index):
            return 2.0 * grad * self.a

    def square(a: Tensor) -> Tensor:
        return apply(Square(), a)

then gate it with :func:`repro.nn.gradcheck.gradcheck` (see
``tests/test_nn_gradcheck.py``).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import AutodiffError
from repro.nn.autograd import Operation, apply, unbroadcast
from repro.nn.tensor import Tensor, _ensure_tensor

__all__ = [
    "add", "sub", "mul", "div", "neg", "matmul", "pow_scalar",
    "sum", "mean", "reshape", "concat", "stack",
    "relu", "leaky_relu", "sigmoid", "tanh", "exp", "log", "softplus",
    "dropout", "layer_norm",
    "gather_rows", "segment_sum", "segment_mean", "segment_max",
    "mse_loss", "gaussian_nll_loss",
]

#: Backwards-compatible alias; the engine owns the implementation now.
_unbroadcast = unbroadcast


# --------------------------------------------------------------------------
# Arithmetic
# --------------------------------------------------------------------------

class Add(Operation):
    broadcastable = True

    def forward(self, a, b):
        return a + b

    def backward(self, grad, index):
        return grad


class Sub(Operation):
    broadcastable = True

    def forward(self, a, b):
        return a - b

    def backward(self, grad, index):
        return grad if index == 0 else -grad


class Mul(Operation):
    broadcastable = True

    def forward(self, a, b):
        self.a, self.b = a, b
        return a * b

    def backward(self, grad, index):
        return grad * self.b if index == 0 else grad * self.a


class Div(Operation):
    broadcastable = True

    def forward(self, a, b):
        self.a, self.b = a, b
        return a / b

    def backward(self, grad, index):
        if index == 0:
            return grad / self.b
        return -grad * self.a / (self.b ** 2)


class Neg(Operation):
    def forward(self, a):
        return -a

    def backward(self, grad, index):
        return -grad


class PowScalar(Operation):
    def __init__(self, exponent: float) -> None:
        self.exponent = exponent

    def forward(self, a):
        self.a = a
        return a ** self.exponent

    def backward(self, grad, index):
        return grad * self.exponent * self.a ** (self.exponent - 1.0)


class MatMul(Operation):
    """Matrix multiplication (2-D x 2-D, or 1-D promoted on either side)."""

    def forward(self, a, b):
        self.a, self.b = a, b
        return a @ b

    def backward(self, grad, index):
        a, b = self.a, self.b
        if a.ndim == 1 and b.ndim == 2:
            return grad @ b.T if index == 0 else np.outer(a, grad)
        if a.ndim == 2 and b.ndim == 1:
            return np.outer(grad, b) if index == 0 else a.T @ grad
        if a.ndim == 1 and b.ndim == 1:
            return grad * b if index == 0 else grad * a
        return grad @ b.T if index == 0 else a.T @ grad


def add(a: Tensor, b: Tensor) -> Tensor:
    """Element-wise addition with broadcasting."""
    return apply(Add(), a, b)


def sub(a: Tensor, b: Tensor) -> Tensor:
    """Element-wise subtraction with broadcasting."""
    return apply(Sub(), a, b)


def mul(a: Tensor, b: Tensor) -> Tensor:
    """Element-wise multiplication with broadcasting."""
    return apply(Mul(), a, b)


def div(a: Tensor, b: Tensor) -> Tensor:
    """Element-wise division with broadcasting."""
    return apply(Div(), a, b)


def neg(a: Tensor) -> Tensor:
    """Element-wise negation."""
    return apply(Neg(), a)


def pow_scalar(a: Tensor, exponent: float) -> Tensor:
    """Element-wise power with a constant exponent."""
    return apply(PowScalar(exponent), a)


def matmul(a: Tensor, b: Tensor) -> Tensor:
    """Matrix multiplication (2-D x 2-D, or 1-D promoted on either side)."""
    return apply(MatMul(), a, b)


# --------------------------------------------------------------------------
# Reductions and shape manipulation
# --------------------------------------------------------------------------

class Sum(Operation):
    def __init__(self, axis, keepdims: bool) -> None:
        self.axis = axis
        self.keepdims = keepdims

    def forward(self, a):
        self.in_shape = a.shape
        return a.sum(axis=self.axis, keepdims=self.keepdims)

    def backward(self, grad, index):
        if self.axis is None:
            return np.broadcast_to(grad, self.in_shape).copy()
        if not self.keepdims:
            grad = np.expand_dims(grad, axis=self.axis)
        return np.broadcast_to(grad, self.in_shape).copy()


class Mean(Operation):
    def __init__(self, axis, keepdims: bool) -> None:
        self.axis = axis
        self.keepdims = keepdims

    def forward(self, a):
        self.in_shape = a.shape
        self.count = a.size if self.axis is None else a.shape[self.axis]
        return a.mean(axis=self.axis, keepdims=self.keepdims)

    def backward(self, grad, index):
        grad = grad / self.count
        if self.axis is None:
            return np.broadcast_to(grad, self.in_shape).copy()
        if not self.keepdims:
            grad = np.expand_dims(grad, axis=self.axis)
        return np.broadcast_to(grad, self.in_shape).copy()


class Reshape(Operation):
    def __init__(self, shape: tuple[int, ...]) -> None:
        self.shape = shape

    def forward(self, a):
        self.in_shape = a.shape
        return a.reshape(self.shape)

    def backward(self, grad, index):
        return grad.reshape(self.in_shape)


class Concat(Operation):
    def __init__(self, axis: int) -> None:
        self.axis = axis

    def forward(self, *arrays):
        self.offsets = np.cumsum([0] + [arr.shape[self.axis] for arr in arrays])
        return np.concatenate(arrays, axis=self.axis)

    def backward(self, grad, index):
        selector = [slice(None)] * grad.ndim
        selector[self.axis] = slice(self.offsets[index], self.offsets[index + 1])
        return grad[tuple(selector)]


class Stack(Operation):
    def __init__(self, axis: int) -> None:
        self.axis = axis

    def forward(self, *arrays):
        return np.stack(arrays, axis=self.axis)

    def backward(self, grad, index):
        return np.take(grad, index, axis=self.axis)


def sum(a: Tensor, axis=None, keepdims: bool = False) -> Tensor:  # noqa: A001
    """Sum reduction."""
    return apply(Sum(axis, keepdims), a)


def mean(a: Tensor, axis=None, keepdims: bool = False) -> Tensor:
    """Mean reduction."""
    return apply(Mean(axis, keepdims), a)


def reshape(a: Tensor, shape: tuple[int, ...]) -> Tensor:
    """Reshape preserving the element order."""
    return apply(Reshape(shape), a)


def concat(tensors: list[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis``."""
    if not tensors:
        raise AutodiffError("concat() requires at least one tensor")
    return apply(Concat(axis), *tensors)


def stack(tensors: list[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis."""
    if not tensors:
        raise AutodiffError("stack() requires at least one tensor")
    return apply(Stack(axis), *tensors)


# --------------------------------------------------------------------------
# Non-linearities
# --------------------------------------------------------------------------

class ReLU(Operation):
    def forward(self, a):
        self.mask = a > 0
        return a * self.mask

    def backward(self, grad, index):
        return grad * self.mask


class LeakyReLU(Operation):
    def __init__(self, negative_slope: float) -> None:
        self.negative_slope = negative_slope

    def forward(self, a):
        self.mask = a > 0
        return np.where(self.mask, a, self.negative_slope * a)

    def backward(self, grad, index):
        return grad * np.where(self.mask, 1.0, self.negative_slope)


class Sigmoid(Operation):
    def forward(self, a):
        self.out = 1.0 / (1.0 + np.exp(-a))
        return self.out

    def backward(self, grad, index):
        return grad * self.out * (1.0 - self.out)


class Tanh(Operation):
    def forward(self, a):
        self.out = np.tanh(a)
        return self.out

    def backward(self, grad, index):
        return grad * (1.0 - self.out ** 2)


class Exp(Operation):
    def forward(self, a):
        self.out = np.exp(a)
        return self.out

    def backward(self, grad, index):
        return grad * self.out


class Log(Operation):
    def forward(self, a):
        self.a = a
        return np.log(a)

    def backward(self, grad, index):
        return grad / self.a


class Softplus(Operation):
    """Numerically stable softplus ``ln(1 + e^x)`` (the sigma head of Eq. 1)."""

    def forward(self, a):
        self.sig = 1.0 / (1.0 + np.exp(-a))
        return np.logaddexp(0.0, a)

    def backward(self, grad, index):
        return grad * self.sig


def relu(a: Tensor) -> Tensor:
    """Rectified linear unit."""
    return apply(ReLU(), a)


def leaky_relu(a: Tensor, negative_slope: float = 0.2) -> Tensor:
    """Leaky ReLU (used inside the GATv2-style attention layer)."""
    return apply(LeakyReLU(negative_slope), a)


def sigmoid(a: Tensor) -> Tensor:
    """Logistic sigmoid."""
    return apply(Sigmoid(), a)


def tanh(a: Tensor) -> Tensor:
    """Hyperbolic tangent."""
    return apply(Tanh(), a)


def exp(a: Tensor) -> Tensor:
    """Element-wise exponential."""
    return apply(Exp(), a)


def log(a: Tensor) -> Tensor:
    """Element-wise natural logarithm."""
    return apply(Log(), a)


def softplus(a: Tensor) -> Tensor:
    """Numerically stable softplus ``ln(1 + e^x)`` (the sigma head of Eq. 1)."""
    return apply(Softplus(), a)


# --------------------------------------------------------------------------
# Regularisation and normalisation
# --------------------------------------------------------------------------

class Identity(Operation):
    """Copying identity (the evaluation-mode path of dropout)."""

    def forward(self, a):
        return a.copy()

    def backward(self, grad, index):
        return grad


class DropoutOp(Operation):
    def __init__(self, mask: np.ndarray) -> None:
        self.mask = mask

    def forward(self, a):
        return a * self.mask

    def backward(self, grad, index):
        return grad * self.mask


class LayerNorm(Operation):
    # gamma/beta gradients come back in the row-broadcast shape.
    broadcastable = True

    def __init__(self, eps: float) -> None:
        self.eps = eps

    def forward(self, a, gamma, beta):
        mu = a.mean(axis=-1, keepdims=True)
        var = a.var(axis=-1, keepdims=True)
        self.inv_std = 1.0 / np.sqrt(var + self.eps)
        self.normalised = (a - mu) * self.inv_std
        self.gamma = gamma
        return gamma * self.normalised + beta

    def backward(self, grad, index):
        if index == 1:  # gamma (engine un-broadcasts to its shape)
            return grad * self.normalised
        if index == 2:  # beta
            return grad
        grad_normalised = grad * self.gamma
        # Standard layer-norm backward (per-row statistics).
        return (grad_normalised
                - grad_normalised.mean(axis=-1, keepdims=True)
                - self.normalised * (grad_normalised * self.normalised
                                     ).mean(axis=-1, keepdims=True)
                ) * self.inv_std


def dropout(a: Tensor, p: float, *, training: bool,
            rng: np.random.Generator | None = None) -> Tensor:
    """Inverted dropout.

    During training each element is zeroed with probability ``p`` and the
    survivors are scaled by ``1 / (1 - p)``; at evaluation time the input is
    returned unchanged.
    """
    a = _ensure_tensor(a)
    if not 0.0 <= p < 1.0:
        raise AutodiffError(f"dropout probability must lie in [0, 1), got {p}")
    if not training or p == 0.0:
        return apply(Identity(), a)
    generator = rng if rng is not None else np.random.default_rng()
    mask = (generator.random(a.data.shape) >= p) / (1.0 - p)
    return apply(DropoutOp(mask), a)


def layer_norm(a: Tensor, gamma: Tensor, beta: Tensor, *, eps: float = 1e-5) -> Tensor:
    """Layer normalisation over the last dimension.

    ``y = gamma * (x - mean) / sqrt(var + eps) + beta`` with the statistics
    computed per row (per node / per sample), as used in both the message
    passing layers and the fully connected stacks of the surrogate.
    """
    return apply(LayerNorm(eps), a, gamma, beta)


# --------------------------------------------------------------------------
# Indexing and segment reductions (message passing primitives)
# --------------------------------------------------------------------------

class GatherRows(Operation):
    def __init__(self, indices: np.ndarray) -> None:
        self.indices = indices

    def forward(self, a):
        self.in_shape = a.shape
        return a[self.indices]

    def backward(self, grad, index):
        grad_a = np.zeros(self.in_shape, dtype=np.float64)
        np.add.at(grad_a, self.indices, grad)
        return grad_a


class SegmentSum(Operation):
    def __init__(self, segment_ids: np.ndarray, num_segments: int) -> None:
        self.segment_ids = segment_ids
        self.num_segments = num_segments

    def forward(self, a):
        out = np.zeros((self.num_segments,) + a.shape[1:], dtype=np.float64)
        np.add.at(out, self.segment_ids, a)
        return out

    def backward(self, grad, index):
        return grad[self.segment_ids]


class SegmentMax(Operation):
    def __init__(self, segment_ids: np.ndarray, num_segments: int) -> None:
        self.segment_ids = segment_ids
        self.num_segments = num_segments

    def forward(self, a):
        feature_shape = a.shape[1:]
        out = np.full((self.num_segments,) + feature_shape, -np.inf,
                      dtype=np.float64)
        np.maximum.at(out, self.segment_ids, a)
        empty = ~np.isin(np.arange(self.num_segments), self.segment_ids)
        if empty.any():
            out[empty] = 0.0
        # Winner mask: an element wins if it equals the segment maximum; ties
        # share the gradient equally.
        self.winners = (a == out[self.segment_ids]).astype(np.float64)
        winner_counts = np.zeros((self.num_segments,) + feature_shape,
                                 dtype=np.float64)
        np.add.at(winner_counts, self.segment_ids, self.winners)
        self.winner_counts = np.maximum(winner_counts, 1.0)
        return out

    def backward(self, grad, index):
        return self.winners * (grad / self.winner_counts)[self.segment_ids]


def gather_rows(a: Tensor, indices: np.ndarray) -> Tensor:
    """Select rows ``a[indices]`` (differentiable scatter-add in the backward)."""
    indices = np.asarray(indices, dtype=np.int64)
    return apply(GatherRows(indices), a)


def segment_sum(a: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Sum rows of ``a`` into ``num_segments`` buckets given by ``segment_ids``."""
    a = _ensure_tensor(a)
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    if segment_ids.shape[0] != a.data.shape[0]:
        raise AutodiffError(
            f"segment_ids length {segment_ids.shape[0]} does not match rows "
            f"{a.data.shape[0]}")
    return apply(SegmentSum(segment_ids, num_segments), a)


def segment_mean(a: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Mean of rows per segment (empty segments yield zeros)."""
    a = _ensure_tensor(a)
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    counts = np.bincount(segment_ids, minlength=num_segments).astype(np.float64)
    safe_counts = np.maximum(counts, 1.0)
    summed = segment_sum(a, segment_ids, num_segments)
    scale = Tensor((1.0 / safe_counts)[:, None] if a.data.ndim > 1 else 1.0 / safe_counts)
    return mul(summed, scale)


def segment_max(a: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Maximum of rows per segment (empty segments yield zeros).

    The gradient flows only to the element that attained the maximum in each
    segment/feature pair, matching the convention of deep-learning frameworks.
    """
    a = _ensure_tensor(a)
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    return apply(SegmentMax(segment_ids, num_segments), a)


# --------------------------------------------------------------------------
# Losses
# --------------------------------------------------------------------------

def mse_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean squared error."""
    prediction = _ensure_tensor(prediction)
    target = _ensure_tensor(target)
    difference = sub(prediction, target)
    return mean(mul(difference, difference))


def gaussian_nll_loss(mu: Tensor, sigma: Tensor, target: Tensor, *,
                      eps: float = 1e-6) -> Tensor:
    """Gaussian negative log-likelihood (the alternative objective of Sec. 3.1).

    ``0.5 * (log(sigma^2) + (target - mu)^2 / sigma^2)`` averaged over the
    batch; ``eps`` guards against the numerical instability for tiny sigma the
    paper mentions as the reason for preferring the MSE objective.
    """
    mu = _ensure_tensor(mu)
    sigma = _ensure_tensor(sigma)
    target = _ensure_tensor(target)
    variance = add(mul(sigma, sigma), Tensor(eps))
    residual = sub(target, mu)
    quadratic = div(mul(residual, residual), variance)
    return mean(mul(add(log(variance), quadratic), Tensor(0.5)))
