"""Neural-network modules built on the autodiff tensor.

:class:`Module` provides parameter registration, recursive traversal, train /
eval mode switching and ``state_dict`` round-trips; the concrete layers cover
exactly what the paper's surrogate needs: linear layers, ReLU / softplus
activations, layer normalisation, dropout, and the small MLP stacks used for
the auxiliary inputs ``x_A`` and ``x_M``.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.exceptions import SurrogateError
from repro.nn import functional as F
from repro.nn.init import kaiming_uniform, ones, xavier_uniform, zeros
from repro.nn.tensor import Tensor

__all__ = ["Module", "Linear", "Sequential", "MLP", "LayerNorm", "Dropout",
           "ReLU", "Softplus"]


class Module:
    """Base class of all layers and models.

    Subclasses assign :class:`~repro.nn.tensor.Tensor` parameters and child
    modules as attributes; :meth:`parameters` and :meth:`named_parameters`
    discover them recursively.  ``training`` toggles dropout behaviour.
    """

    def __init__(self) -> None:
        self.training = True

    # -- traversal ------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Tensor]]:
        """Yield ``(name, parameter)`` pairs recursively."""
        for attribute, value in vars(self).items():
            if attribute.startswith("_modules_list"):
                continue
            name = f"{prefix}{attribute}"
            if isinstance(value, Tensor) and value.requires_grad:
                yield name, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{name}.")
            elif isinstance(value, (list, tuple)):
                for index, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{name}.{index}.")
                    elif isinstance(item, Tensor) and item.requires_grad:
                        yield f"{name}.{index}", item

    def parameters(self) -> list[Tensor]:
        """All trainable parameters of the module tree."""
        return [parameter for _, parameter in self.named_parameters()]

    def modules(self) -> Iterator["Module"]:
        """Yield this module and all sub-modules."""
        yield self
        for value in vars(self).values():
            if isinstance(value, Module):
                yield from value.modules()
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield from item.modules()

    # -- mode switching ---------------------------------------------------------
    def train(self) -> "Module":
        """Switch the whole module tree to training mode."""
        for module in self.modules():
            module.training = True
        return self

    def eval(self) -> "Module":
        """Switch the whole module tree to evaluation mode."""
        for module in self.modules():
            module.training = False
        return self

    # -- gradients and state -----------------------------------------------------
    def zero_grad(self) -> None:
        """Reset gradients of every parameter."""
        for parameter in self.parameters():
            parameter.zero_grad()

    def num_parameters(self) -> int:
        """Total number of scalar trainable parameters."""
        return int(np.sum([parameter.size for parameter in self.parameters()]))

    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of every parameter keyed by its dotted name."""
        return {name: parameter.data.copy()
                for name, parameter in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load parameter values produced by :meth:`state_dict`."""
        parameters = dict(self.named_parameters())
        missing = set(parameters) - set(state)
        unexpected = set(state) - set(parameters)
        if missing or unexpected:
            raise SurrogateError(
                f"state dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}")
        for name, values in state.items():
            parameter = parameters[name]
            values = np.asarray(values, dtype=np.float64)
            if parameter.data.shape != values.shape:
                raise SurrogateError(
                    f"shape mismatch for {name}: model {parameter.data.shape} "
                    f"vs state {values.shape}")
            parameter.data[...] = values

    # -- call protocol -------------------------------------------------------------
    def forward(self, *args, **kwargs):
        """Compute the module output (must be overridden)."""
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class Linear(Module):
    """Affine layer ``y = x W + b``."""

    def __init__(self, in_features: int, out_features: int, *, bias: bool = True,
                 rng: np.random.Generator | None = None,
                 init: str = "kaiming") -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise SurrogateError(
                f"invalid Linear dimensions ({in_features}, {out_features})")
        generator = rng if rng is not None else np.random.default_rng()
        if init == "kaiming":
            weight = kaiming_uniform((in_features, out_features), generator)
        elif init == "xavier":
            weight = xavier_uniform((in_features, out_features), generator)
        else:
            raise SurrogateError(f"unknown init {init!r}")
        self.weight = Tensor(weight, requires_grad=True, name="weight")
        self.bias = Tensor(zeros((out_features,)), requires_grad=True,
                           name="bias") if bias else None
        self.in_features = in_features
        self.out_features = out_features

    def forward(self, inputs: Tensor) -> Tensor:
        output = F.matmul(inputs, self.weight)
        if self.bias is not None:
            output = F.add(output, self.bias)
        return output


class ReLU(Module):
    """ReLU activation as a module (for use inside :class:`Sequential`)."""

    def forward(self, inputs: Tensor) -> Tensor:
        return F.relu(inputs)


class Softplus(Module):
    """Softplus activation as a module."""

    def forward(self, inputs: Tensor) -> Tensor:
        return F.softplus(inputs)


class LayerNorm(Module):
    """Layer normalisation over the last dimension with learnable affine."""

    def __init__(self, normalized_shape: int, *, eps: float = 1e-5) -> None:
        super().__init__()
        if normalized_shape <= 0:
            raise SurrogateError(
                f"normalized_shape must be positive, got {normalized_shape}")
        self.gamma = Tensor(ones((normalized_shape,)), requires_grad=True, name="gamma")
        self.beta = Tensor(zeros((normalized_shape,)), requires_grad=True, name="beta")
        self.eps = eps

    def forward(self, inputs: Tensor) -> Tensor:
        return F.layer_norm(inputs, self.gamma, self.beta, eps=self.eps)


class Dropout(Module):
    """Inverted dropout driven by an explicit generator for reproducibility."""

    def __init__(self, p: float = 0.1, *, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise SurrogateError(f"dropout probability must lie in [0, 1), got {p}")
        self.p = p
        self._rng = rng if rng is not None else np.random.default_rng(0)

    def forward(self, inputs: Tensor) -> Tensor:
        return F.dropout(inputs, self.p, training=self.training, rng=self._rng)


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self.layers = list(modules)

    def forward(self, inputs: Tensor) -> Tensor:
        output = inputs
        for layer in self.layers:
            output = layer(output)
        return output

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, index: int) -> Module:
        return self.layers[index]


class MLP(Module):
    """Stack of ``Linear -> LayerNorm -> ReLU (-> Dropout)`` blocks.

    This is the fully connected building block of the surrogate: the paper
    applies layer normalisation and ReLU inside both the message-passing and
    FC stacks, with dropout only in the combined head.
    """

    def __init__(self, in_features: int, hidden_features: int, *,
                 num_layers: int = 1, out_features: int | None = None,
                 dropout: float = 0.0, layer_norm: bool = True,
                 final_activation: bool = True,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        if num_layers < 1:
            raise SurrogateError(f"num_layers must be >= 1, got {num_layers}")
        generator = rng if rng is not None else np.random.default_rng(0)
        out_features = hidden_features if out_features is None else out_features
        layers: list[Module] = []
        current = in_features
        for layer_index in range(num_layers):
            is_last = layer_index == num_layers - 1
            width = out_features if is_last else hidden_features
            layers.append(Linear(current, width, rng=generator))
            if not is_last or final_activation:
                if layer_norm:
                    layers.append(LayerNorm(width))
                layers.append(ReLU())
                if dropout > 0.0:
                    layers.append(Dropout(dropout, rng=generator))
            current = width
        self.body = Sequential(*layers)
        self.in_features = in_features
        self.out_features = out_features

    def forward(self, inputs: Tensor) -> Tensor:
        return self.body(inputs)
