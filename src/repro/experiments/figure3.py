"""Figure 3 and the headline claims: budget comparison of search strategies.

Figure 3 summarises, for each strategy (grid search with the full 64-point
budget, BO-balanced and BO-exploration with half the budget), the distribution
of per-candidate *sample medians* of the metric on the unseen test matrix, and
the replication-level distribution of the single best candidate of each
strategy.  From the same data the headline claims are derived:

* MCMC preconditioning reduces Krylov steps by up to ~25 % on the test matrix,
* the BO-enhanced recommendations reach a better (or equal) minimum than grid
  search while using only 50 % of the evaluation budget, about 10 % fewer
  steps at the paper's scale.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.evaluation import PerformanceRecord
from repro.experiments.pipeline import ExperimentProfile, PipelineResult, run_pipeline_cached
from repro.experiments.reporting import format_table
from repro.logging_utils import get_logger
from repro.stats.summary import BoxplotSummary, boxplot_summary

__all__ = ["StrategyResult", "Figure3Result", "run_figure3", "format_figure3"]

_LOG = get_logger("experiments.figure3")


@dataclass
class StrategyResult:
    """Per-strategy statistics displayed in Figure 3."""

    label: str
    budget: int
    median_summary: BoxplotSummary
    best_parameters_description: str
    best_median: float
    best_replication_values: list[float]

    @property
    def best_mean(self) -> float:
        """Mean metric of the best candidate over its replications."""
        return float(np.mean(self.best_replication_values))


@dataclass
class Figure3Result:
    """All strategies plus the derived headline numbers."""

    strategies: dict[str, StrategyResult]
    baseline_iterations: int

    # -- headline claims -------------------------------------------------------
    def best_reduction(self, label: str) -> float:
        """Fractional reduction of solver steps achieved by the strategy's best pick."""
        return 1.0 - self.strategies[label].best_median

    def bo_vs_grid_improvement(self) -> float:
        """Relative improvement of the best BO strategy over grid search.

        Positive values mean BO found a better (lower) metric than the grid
        despite its half budget; the paper reports roughly +10 %.
        """
        grid_best = self.strategies["grid"].best_median
        bo_best = min(self.strategies[label].best_median
                      for label in self.strategies if label.startswith("bo_"))
        if grid_best <= 0:
            return 0.0
        return (grid_best - bo_best) / grid_best

    def budget_fraction(self) -> float:
        """Evaluation budget of one BO strategy relative to grid search."""
        grid_budget = self.strategies["grid"].budget
        bo_budgets = [self.strategies[label].budget for label in self.strategies
                      if label.startswith("bo_")]
        if not bo_budgets or grid_budget == 0:
            return float("nan")
        return float(bo_budgets[0]) / float(grid_budget)


def _strategy_from_records(label: str, records: list[PerformanceRecord]
                           ) -> StrategyResult:
    medians = np.array([record.y_median for record in records], dtype=np.float64)
    best_index = int(np.argmin(medians))
    best = records[best_index]
    return StrategyResult(
        label=label,
        budget=len(records),
        median_summary=boxplot_summary(medians),
        best_parameters_description=best.parameters.describe(),
        best_median=float(medians[best_index]),
        best_replication_values=list(best.y_values),
    )


def run_figure3(profile: ExperimentProfile | None = None, *,
                result: PipelineResult | None = None) -> Figure3Result:
    """Compute the Figure 3 statistics from a pipeline run."""
    pipeline = result if result is not None else run_pipeline_cached(profile)
    strategies: dict[str, StrategyResult] = {
        "grid": _strategy_from_records("grid", pipeline.reference_records),
    }
    for xi, records in pipeline.bo_records.items():
        label = "bo_balanced" if xi <= 0.1 else "bo_exploration"
        strategies[label] = _strategy_from_records(label, records)
    baseline = pipeline.reference_records[0].baseline_iterations \
        if pipeline.reference_records else 0
    figure = Figure3Result(strategies=strategies, baseline_iterations=baseline)
    _LOG.info("figure 3: grid best %.3f, BO best %.3f (budget fraction %.2f)",
              figure.strategies["grid"].best_median,
              min(s.best_median for label, s in strategies.items()
                  if label.startswith("bo_")),
              figure.budget_fraction())
    return figure


def format_figure3(figure: Figure3Result) -> str:
    """Render the box-plot statistics and headline claims as text."""
    headers = ["strategy", "budget", "median of medians", "q1", "q3",
               "whisker lo", "whisker hi", "best median", "best mean",
               "best parameters"]
    rows = []
    for label, strategy in figure.strategies.items():
        summary = strategy.median_summary
        rows.append([
            label, strategy.budget, summary.median, summary.first_quartile,
            summary.third_quartile, summary.whisker_low, summary.whisker_high,
            strategy.best_median, strategy.best_mean,
            strategy.best_parameters_description,
        ])
    table = format_table(headers, rows,
                         title="Figure 3: distribution of per-candidate sample medians "
                               "of y(A, x_M) on the unseen test matrix")
    headline = [
        f"unpreconditioned GMRES iterations on the test matrix: "
        f"{figure.baseline_iterations}",
        f"best step reduction via MCMC preconditioning (grid): "
        f"{figure.best_reduction('grid'):.1%}",
        f"best step reduction via MCMC preconditioning (BO): "
        f"{max(figure.best_reduction(l) for l in figure.strategies if l.startswith('bo_')):.1%}",
        f"BO budget relative to grid search: {figure.budget_fraction():.0%}",
        f"BO improvement over grid search at that budget: "
        f"{figure.bo_vs_grid_improvement():+.1%}",
    ]
    return table + "\n" + "\n".join(headline)
