"""Figure 1: calibration of the surrogate's uncertainty estimates.

The figure compares, for the Pre-BO and BO-enhanced models, the expected
coverage of the symmetric Gaussian prediction intervals (Eq. 5) against the
observed coverage over all individual observations of the reference grid on
the unseen test matrix, with 95 % Wilson score bands (Eq. 6).  The paper's
finding: the Pre-BO model is over-confident (curve below the diagonal) and a
single BO round moves the curve markedly closer to the diagonal, most visibly
for the large-``alpha`` region.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.pipeline import ExperimentProfile, PipelineResult, run_pipeline_cached
from repro.experiments.reporting import format_table
from repro.logging_utils import get_logger
from repro.stats.calibration import CalibrationCurve, calibration_curve

__all__ = ["Figure1Result", "run_figure1", "format_figure1"]

_LOG = get_logger("experiments.figure1")


@dataclass
class Figure1Result:
    """Calibration curves for both models, overall and per ``alpha``."""

    overall: dict[str, CalibrationCurve]
    per_alpha: dict[float, dict[str, CalibrationCurve]]
    n_observations: int

    def improvement(self) -> float:
        """Reduction of mean absolute miscalibration from Pre-BO to BO-enhanced."""
        pre = self.overall["pre_bo"].mean_absolute_miscalibration()
        post = self.overall["bo_enhanced"].mean_absolute_miscalibration()
        return pre - post


def _expand_per_observation(result: PipelineResult, predictions
                            ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Flatten (record, replicate) pairs with per-record predictions repeated."""
    mu_per_record, sigma_per_record = predictions
    observations: list[float] = []
    mu: list[float] = []
    sigma: list[float] = []
    alphas: list[float] = []
    for record, record_mu, record_sigma in zip(result.reference_records,
                                               mu_per_record, sigma_per_record):
        for value in record.y_values:
            observations.append(float(value))
            mu.append(float(record_mu))
            sigma.append(float(record_sigma))
            alphas.append(float(record.parameters.alpha))
    return (np.array(observations), np.array(mu), np.array(sigma), np.array(alphas))


def run_figure1(profile: ExperimentProfile | None = None, *,
                result: PipelineResult | None = None) -> Figure1Result:
    """Compute the Figure 1 calibration curves."""
    pipeline = result if result is not None else run_pipeline_cached(profile)
    curves: dict[str, CalibrationCurve] = {}
    per_alpha: dict[float, dict[str, CalibrationCurve]] = {}

    data = {
        "pre_bo": _expand_per_observation(pipeline, pipeline.pre_bo_predictions),
        "bo_enhanced": _expand_per_observation(pipeline, pipeline.bo_enhanced_predictions),
    }
    n_observations = data["pre_bo"][0].size
    for label, (observations, mu, sigma, alphas) in data.items():
        curves[label] = calibration_curve(observations, mu, sigma, label=label)
        for alpha in np.unique(alphas):
            mask = alphas == alpha
            per_alpha.setdefault(float(alpha), {})[label] = calibration_curve(
                observations[mask], mu[mask], sigma[mask],
                label=f"{label}@alpha={alpha:g}")
    _LOG.info("figure 1: miscalibration pre=%.3f post=%.3f",
              curves["pre_bo"].mean_absolute_miscalibration(),
              curves["bo_enhanced"].mean_absolute_miscalibration())
    return Figure1Result(overall=curves, per_alpha=per_alpha,
                         n_observations=n_observations)


def format_figure1(figure: Figure1Result) -> str:
    """Render the calibration curves as text tables."""
    blocks: list[str] = []
    headers = ["expected tau", "observed (Pre-BO)", "Wilson lo", "Wilson hi",
               "observed (BO-enhanced)", "Wilson lo", "Wilson hi"]
    pre = figure.overall["pre_bo"]
    post = figure.overall["bo_enhanced"]
    rows = []
    for index, tau in enumerate(pre.confidence_levels):
        rows.append([
            tau,
            pre.observed_coverage[index], pre.wilson_lower[index], pre.wilson_upper[index],
            post.observed_coverage[index], post.wilson_lower[index], post.wilson_upper[index],
        ])
    blocks.append(format_table(
        headers, rows,
        title=(f"Figure 1: calibration over {figure.n_observations} observations "
               f"(Pre-BO vs BO-enhanced)")))
    blocks.append(
        f"mean |observed - expected| coverage: Pre-BO "
        f"{pre.mean_absolute_miscalibration():.3f} "
        f"-> BO-enhanced {post.mean_absolute_miscalibration():.3f} "
        f"(improvement {figure.improvement():+.3f}; "
        f"Pre-BO overconfident: {pre.is_overconfident()})")
    for alpha in sorted(figure.per_alpha):
        pair = figure.per_alpha[alpha]
        blocks.append(
            f"  alpha={alpha:g}: miscalibration Pre-BO "
            f"{pair['pre_bo'].mean_absolute_miscalibration():.3f} -> BO-enhanced "
            f"{pair['bo_enhanced'].mean_absolute_miscalibration():.3f}")
    return "\n".join(blocks)
