"""The shared end-to-end pipeline behind Figures 1-3.

The experiment of Sec. 4.4 has a fixed structure:

1. build the coarse grid-search dataset on the training matrices (Sec. 4.2),
2. train the **Pre-BO** surrogate on it,
3. use the Pre-BO model to recommend a batch of candidates on the *unseen*
   test matrix for each acquisition setting (balanced ``xi = 0.05`` and
   exploration ``xi = 1.0``), measure them with real solver runs,
4. merge the measurements into the dataset and retrain, producing the
   **BO-enhanced** model,
5. measure the full reference grid on the test matrix (the 64 x 10
   observations all three figures are computed from),
6. predict the reference grid with both models.

:func:`run_pipeline` executes those steps for a given
:class:`ExperimentProfile`; :func:`run_pipeline_cached` memoises the result so
the three figure drivers (and their benchmarks) share one run.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

import numpy as np
import scipy.sparse as sp

from repro.config import active_profile
from repro.core.baselines import grid_search_candidates
from repro.core.dataset import SurrogateDataset, encode_parameters
from repro.core.evaluation import (
    LabelledObservation,
    MatrixEvaluator,
    PerformanceRecord,
    SolverSettings,
    collect_grid_observations,
)
from repro.core.optimize import AcquisitionOptimizer, Candidate
from repro.core.surrogate import GraphNeuralSurrogate, SurrogateConfig
from repro.core.training import Trainer, TrainingConfig
from repro.exceptions import ExperimentError
from repro.logging_utils import get_logger
from repro.matrices.registry import get_spec, test_specs
from repro.mcmc.parameters import MCMCParameters
from repro.service.cache import ArtifactCache
from repro.service.store import ObservationStore
from repro.sparse.fingerprint import content_hash

__all__ = ["ExperimentProfile", "PipelineResult", "profile_hash",
           "run_pipeline", "run_pipeline_cached", "clear_pipeline_cache"]

_LOG = get_logger("experiments.pipeline")


@dataclass(frozen=True)
class ExperimentProfile:
    """Scale profile of the end-to-end experiment.

    ``smoke`` keeps every stage laptop-fast (minutes); ``paper`` reproduces the
    published protocol (4x4x4 grid, 10 replications, 32-candidate BO batches,
    64-point reference grid) at correspondingly higher cost.
    """

    name: str
    training_matrix_names: tuple[str, ...]
    test_matrix_name: str
    grid_alphas: tuple[float, ...]
    grid_epss: tuple[float, ...]
    grid_deltas: tuple[float, ...]
    solvers: tuple[str, ...]
    n_replications_train: int
    n_replications_eval: int
    n_replications_bo: int
    bo_batch_size: int
    eval_alphas: tuple[float, ...]
    eval_epss: tuple[float, ...]
    eval_deltas: tuple[float, ...]
    acquisition_xis: tuple[float, ...] = (0.05, 1.0)
    solver_settings: SolverSettings = field(default_factory=SolverSettings)
    surrogate: SurrogateConfig = field(default_factory=SurrogateConfig)
    training: TrainingConfig = field(default_factory=TrainingConfig)
    seed: int = 0

    @classmethod
    def smoke(cls, *, seed: int = 0) -> "ExperimentProfile":
        """CI-sized profile: small training pool, coarse grids, few replications."""
        return cls(
            name="smoke",
            training_matrix_names=(
                "2DFDLaplace_16",
                "PDD_RealSparse_N64",
                "PDD_RealSparse_N128",
                "unsteady_adv_diff_order1_0001",
            ),
            test_matrix_name="unsteady_adv_diff_order2_0001",
            grid_alphas=(0.05, 1.0, 4.0, 5.0),
            grid_epss=(0.5, 0.25),
            grid_deltas=(0.5, 0.25),
            solvers=("gmres",),
            n_replications_train=3,
            n_replications_eval=3,
            n_replications_bo=3,
            bo_batch_size=8,
            eval_alphas=(0.05, 1.0, 4.0, 5.0),
            eval_epss=(0.5, 0.25, 0.125),
            eval_deltas=(0.5, 0.25, 0.125),
            solver_settings=SolverSettings(rtol=1e-8, maxiter=600),
            surrogate=SurrogateConfig(graph_hidden=32, xa_hidden=16, xm_hidden=16,
                                      combined_hidden=32, dropout=0.05, seed=seed),
            training=TrainingConfig(epochs=60, batch_size=64, learning_rate=5e-3,
                                    weight_decay=1e-4, patience=20, seed=seed),
            seed=seed,
        )

    @classmethod
    def paper(cls, *, seed: int = 0) -> "ExperimentProfile":
        """The published protocol (hours of compute on a laptop)."""
        return cls(
            name="paper",
            training_matrix_names=(
                "2DFDLaplace_16",
                "2DFDLaplace_32",
                "2DFDLaplace_64",
                "a00512",
                "unsteady_adv_diff_order1_0001",
                "PDD_RealSparse_N64",
                "PDD_RealSparse_N128",
                "PDD_RealSparse_N256",
            ),
            test_matrix_name="unsteady_adv_diff_order2_0001",
            grid_alphas=(1.0, 2.0, 4.0, 5.0),
            grid_epss=(0.5, 0.25, 0.125, 0.0625),
            grid_deltas=(0.5, 0.25, 0.125, 0.0625),
            solvers=("gmres", "bicgstab"),
            n_replications_train=10,
            n_replications_eval=10,
            n_replications_bo=10,
            bo_batch_size=32,
            eval_alphas=(1.0, 2.0, 4.0, 5.0),
            eval_epss=(0.5, 0.25, 0.125, 0.0625),
            eval_deltas=(0.5, 0.25, 0.125, 0.0625),
            solver_settings=SolverSettings(rtol=1e-8, maxiter=1000),
            surrogate=SurrogateConfig.paper(seed=seed),
            training=TrainingConfig.paper(seed=seed),
            seed=seed,
        )

    @classmethod
    def from_name(cls, name: str, *, seed: int = 0) -> "ExperimentProfile":
        """Profile by name (``smoke`` / ``paper``)."""
        key = name.strip().lower()
        if key == "smoke":
            return cls.smoke(seed=seed)
        if key == "paper":
            return cls.paper(seed=seed)
        raise ExperimentError(f"unknown profile {name!r}; expected 'smoke' or 'paper'")

    @classmethod
    def from_environment(cls, *, seed: int = 0) -> "ExperimentProfile":
        """Profile selected through the ``REPRO_PROFILE`` environment variable."""
        return cls.from_name(active_profile(), seed=seed)

    # -- derived grids ----------------------------------------------------------
    def training_grid(self) -> list[MCMCParameters]:
        """Parameter grid used to build the training dataset."""
        return grid_search_candidates(solver="gmres", alphas=self.grid_alphas,
                                      epss=self.grid_epss, deltas=self.grid_deltas) \
            if self.solvers == ("gmres",) else [
                p for solver in self.solvers
                for p in grid_search_candidates(solver=solver, alphas=self.grid_alphas,
                                                epss=self.grid_epss,
                                                deltas=self.grid_deltas)]

    def evaluation_grid(self, solver: str = "gmres") -> list[MCMCParameters]:
        """Reference grid evaluated on the unseen test matrix (64 points in the paper)."""
        return grid_search_candidates(solver=solver, alphas=self.eval_alphas,
                                      epss=self.eval_epss, deltas=self.eval_deltas)


@dataclass
class PipelineResult:
    """Everything the figure drivers need, produced by one pipeline run."""

    profile: ExperimentProfile
    training_matrices: dict[str, sp.csr_matrix]
    test_matrix: sp.csr_matrix
    dataset: SurrogateDataset
    pre_bo_model: GraphNeuralSurrogate
    bo_enhanced_model: GraphNeuralSurrogate
    bo_candidates: dict[float, list[Candidate]]
    bo_records: dict[float, list[PerformanceRecord]]
    reference_records: list[PerformanceRecord]
    pre_bo_predictions: tuple[np.ndarray, np.ndarray]
    bo_enhanced_predictions: tuple[np.ndarray, np.ndarray]

    @property
    def test_matrix_name(self) -> str:
        """Name of the unseen generalisation target."""
        return self.profile.test_matrix_name

    def reference_parameters(self) -> list[MCMCParameters]:
        """Parameter vectors of the reference grid, in record order."""
        return [record.parameters for record in self.reference_records]


def profile_hash(profile: ExperimentProfile) -> str:
    """Content hash over *every* field of the profile (and its sub-configs).

    Unlike the former ``(name, seed)`` memo key, two profiles that share a
    name but differ in any grid, replication count, solver setting or model
    hyperparameter hash differently — mutating a profile can no longer serve
    a stale pipeline result.
    """
    return content_hash(json.dumps(asdict(profile), sort_keys=True, default=repr))


def _build_matrices(names: tuple[str, ...]) -> dict[str, sp.csr_matrix]:
    return {name: get_spec(name).build() for name in names}


def _open_store(store: "ObservationStore | str | Path | None"
                ) -> ObservationStore | None:
    if store is None or isinstance(store, ObservationStore):
        return store
    return ObservationStore(store)


def _predict_records(model: GraphNeuralSurrogate, dataset: SurrogateDataset,
                     matrix: sp.spmatrix, matrix_name: str,
                     records: list[PerformanceRecord]
                     ) -> tuple[np.ndarray, np.ndarray]:
    optimizer = AcquisitionOptimizer(model, dataset, seed=0)
    parameters = [record.parameters for record in records]
    return optimizer.predict_parameters(matrix, matrix_name, parameters)


def run_pipeline(profile: ExperimentProfile | None = None, *,
                 store: "ObservationStore | str | Path | None" = None
                 ) -> PipelineResult:
    """Execute the full experiment pipeline for ``profile`` (default: from env).

    Parameters
    ----------
    profile:
        Scale profile; selected through ``REPRO_PROFILE`` when ``None``.
    store:
        Optional :class:`~repro.service.store.ObservationStore` (or its
        directory).  Every measurement — training grid, reference grid, BO
        rounds — is persisted there and served from there on a re-run, so a
        killed run restarted with the same store re-measures only what is
        missing and still produces identical figure inputs (the non-measured
        stages, surrogate training and BO proposal, are deterministic given
        the profile).
    """
    profile = profile if profile is not None else ExperimentProfile.from_environment()
    store = _open_store(store)
    _LOG.info("running pipeline with profile %s%s", profile.name,
              "" if store is None else f" (store: {store.root})")

    # 1. Training data -----------------------------------------------------------
    training_matrices = _build_matrices(profile.training_matrix_names)
    observations = collect_grid_observations(
        training_matrices, profile.training_grid(),
        n_replications=profile.n_replications_train,
        settings=profile.solver_settings, seed=profile.seed, store=store)
    dataset = SurrogateDataset(observations, training_matrices)

    # 2. Pre-BO model -------------------------------------------------------------
    surrogate_config = profile.surrogate.with_dims(
        node_dim=dataset.node_feature_dim, edge_dim=dataset.edge_feature_dim,
        xa_dim=dataset.xa_dim, xm_dim=dataset.xm_dim)
    model = GraphNeuralSurrogate(surrogate_config)
    trainer = Trainer(profile.training)
    trainer.fit(model, dataset)
    pre_bo_model = GraphNeuralSurrogate(surrogate_config)
    pre_bo_model.load_state_dict(model.state_dict())
    pre_bo_model.eval()

    # 3. Reference grid on the unseen test matrix -----------------------------------
    test_spec = get_spec(profile.test_matrix_name)
    if test_spec.role != "test":
        _LOG.warning("%s is not marked as a test matrix in the registry",
                     profile.test_matrix_name)
    test_matrix = test_spec.build()
    evaluator = MatrixEvaluator(test_matrix, profile.test_matrix_name,
                                settings=profile.solver_settings,
                                seed=profile.seed + 1009, store=store)
    reference_records = evaluator.evaluate_many(
        profile.evaluation_grid("gmres"),
        n_replications=profile.n_replications_eval)

    pre_bo_predictions = _predict_records(pre_bo_model, dataset, test_matrix,
                                          profile.test_matrix_name, reference_records)

    # 4. BO round: recommendations from the Pre-BO model for both xi settings --------
    bo_candidates: dict[float, list[Candidate]] = {}
    bo_records: dict[float, list[PerformanceRecord]] = {}
    new_observations: list[LabelledObservation] = []
    for index, xi in enumerate(profile.acquisition_xis):
        optimizer = AcquisitionOptimizer(pre_bo_model, dataset,
                                         seed=profile.seed + 31 * (index + 1))
        candidates = optimizer.propose(test_matrix, profile.test_matrix_name,
                                       y_min=None, n_candidates=profile.bo_batch_size,
                                       xi=xi, solver="gmres")
        records = evaluator.evaluate_many([c.parameters for c in candidates],
                                          n_replications=profile.n_replications_bo)
        bo_candidates[xi] = candidates
        bo_records[xi] = records
        new_observations.extend(record.to_observation() for record in records)
        _LOG.info("BO strategy xi=%.2f: best measured %.3f", xi,
                  min(record.y_mean for record in records))

    # 5. BO-enhanced model -------------------------------------------------------------
    dataset.extend(new_observations, matrices={profile.test_matrix_name: test_matrix})
    bo_enhanced_model = GraphNeuralSurrogate(surrogate_config)
    bo_enhanced_model.load_state_dict(pre_bo_model.state_dict())
    trainer.fit(bo_enhanced_model, dataset)
    bo_enhanced_model.eval()

    bo_enhanced_predictions = _predict_records(
        bo_enhanced_model, dataset, test_matrix, profile.test_matrix_name,
        reference_records)

    return PipelineResult(
        profile=profile,
        training_matrices=training_matrices,
        test_matrix=test_matrix,
        dataset=dataset,
        pre_bo_model=pre_bo_model,
        bo_enhanced_model=bo_enhanced_model,
        bo_candidates=bo_candidates,
        bo_records=bo_records,
        reference_records=reference_records,
        pre_bo_predictions=pre_bo_predictions,
        bo_enhanced_predictions=bo_enhanced_predictions,
    )


#: Bounded memo for pipeline results.  A :class:`PipelineResult` holds the
#: training matrices, the full dataset and two trained models, so the memo
#: must not grow with every profile variation a session tries; the LRU bound
#: keeps at most a handful alive and :func:`clear_pipeline_cache` releases
#: the payloads outright.
_PIPELINE_CACHE = ArtifactCache(max_entries=4)


def run_pipeline_cached(profile: ExperimentProfile | None = None, *,
                        store: "ObservationStore | str | Path | None" = None
                        ) -> PipelineResult:
    """Memoised :func:`run_pipeline` keyed by the full profile content hash.

    The three figure drivers consume the same pipeline output; caching makes
    ``pytest benchmarks/`` run it once instead of three times.  The key is
    :func:`profile_hash` (plus the store location), so two profiles differing
    in *any* field — not just name and seed — never share a result.
    """
    profile = profile if profile is not None else ExperimentProfile.from_environment()
    store = _open_store(store)
    key = ("pipeline", profile_hash(profile),
           None if store is None else str(store.root.resolve()))
    return _PIPELINE_CACHE.get_or_build(
        key, lambda: run_pipeline(profile, store=store))


def clear_pipeline_cache() -> None:
    """Release every memoised pipeline result (and its model/dataset payloads)."""
    _PIPELINE_CACHE.clear()
