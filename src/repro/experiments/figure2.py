"""Figure 2: pointwise confidence-interval inclusion over the (eps, delta) grid.

For each parameter vector of the reference grid the empirical 99 % confidence
interval of the metric over the replications is computed; the figure reports,
per ``alpha`` and per model, the map of whether the model's predicted mean
falls inside that interval.  The paper finds substantially higher inclusion
for the BO-enhanced model at ``alpha in {4, 5}``, and discusses the
``eps ⪅ delta`` asymmetry of successful preconditioners visible in the same
grids.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.pipeline import ExperimentProfile, PipelineResult, run_pipeline_cached
from repro.experiments.reporting import format_table
from repro.logging_utils import get_logger
from repro.stats.intervals import mean_inclusion

__all__ = ["Figure2Result", "run_figure2", "format_figure2"]

_LOG = get_logger("experiments.figure2")


@dataclass
class Figure2Result:
    """Inclusion heatmaps and measured-metric maps over the (eps, delta) grid."""

    alphas: list[float]
    epss: list[float]
    deltas: list[float]
    #: ``inclusion[model][alpha]`` is a boolean array of shape (len(epss), len(deltas)).
    inclusion: dict[str, dict[float, np.ndarray]]
    #: ``metric_mean[alpha]`` holds the measured mean metric on the same grid.
    metric_mean: dict[float, np.ndarray]
    confidence: float

    def inclusion_rate(self, model: str, alpha: float | None = None) -> float:
        """Fraction of grid cells whose CI contains the predicted mean."""
        maps = self.inclusion[model]
        if alpha is not None:
            values = maps[alpha]
            return float(np.mean(values))
        stacked = np.concatenate([grid.ravel() for grid in maps.values()])
        return float(np.mean(stacked))

    def eps_delta_asymmetry(self, alpha: float) -> float:
        """Mean metric difference between the ``eps > delta`` and ``eps < delta`` halves.

        A positive value means parameter choices with ``eps <= delta`` give a
        lower (better) metric -- the asymmetry reported in the paper.
        """
        grid = self.metric_mean[alpha]
        upper: list[float] = []   # eps > delta
        lower: list[float] = []   # eps < delta
        for i, eps in enumerate(self.epss):
            for j, delta in enumerate(self.deltas):
                if eps > delta:
                    upper.append(float(grid[i, j]))
                elif eps < delta:
                    lower.append(float(grid[i, j]))
        if not upper or not lower:
            return 0.0
        return float(np.mean(upper) - np.mean(lower))


def run_figure2(profile: ExperimentProfile | None = None, *,
                result: PipelineResult | None = None,
                confidence: float = 0.99) -> Figure2Result:
    """Compute the Figure 2 inclusion maps."""
    pipeline = result if result is not None else run_pipeline_cached(profile)
    records = pipeline.reference_records
    alphas = sorted({record.parameters.alpha for record in records})
    epss = sorted({record.parameters.eps for record in records}, reverse=True)
    deltas = sorted({record.parameters.delta for record in records}, reverse=True)

    predictions = {
        "pre_bo": pipeline.pre_bo_predictions,
        "bo_enhanced": pipeline.bo_enhanced_predictions,
    }
    index_of = {(record.parameters.alpha, record.parameters.eps,
                 record.parameters.delta): position
                for position, record in enumerate(records)}

    inclusion: dict[str, dict[float, np.ndarray]] = {name: {} for name in predictions}
    metric_mean: dict[float, np.ndarray] = {}
    for alpha in alphas:
        metric_grid = np.full((len(epss), len(deltas)), np.nan)
        grids = {name: np.zeros((len(epss), len(deltas)), dtype=bool)
                 for name in predictions}
        for i, eps in enumerate(epss):
            for j, delta in enumerate(deltas):
                position = index_of.get((alpha, eps, delta))
                if position is None:
                    continue
                record = records[position]
                metric_grid[i, j] = record.y_mean
                for name, (mu, _sigma) in predictions.items():
                    grids[name][i, j] = mean_inclusion(
                        float(mu[position]), np.asarray(record.y_values),
                        confidence=confidence)
        metric_mean[float(alpha)] = metric_grid
        for name in predictions:
            inclusion[name][float(alpha)] = grids[name]

    result_object = Figure2Result(
        alphas=[float(a) for a in alphas],
        epss=[float(e) for e in epss],
        deltas=[float(d) for d in deltas],
        inclusion=inclusion,
        metric_mean=metric_mean,
        confidence=confidence,
    )
    _LOG.info("figure 2: inclusion pre=%.2f post=%.2f",
              result_object.inclusion_rate("pre_bo"),
              result_object.inclusion_rate("bo_enhanced"))
    return result_object


def format_figure2(figure: Figure2Result) -> str:
    """Render the inclusion heatmaps and summary rates as text."""
    blocks: list[str] = []
    blocks.append(
        f"Figure 2: predicted-mean inclusion in the empirical "
        f"{figure.confidence:.0%} CI, per alpha")
    for alpha in figure.alphas:
        for model in ("pre_bo", "bo_enhanced"):
            grid = figure.inclusion[model][alpha]
            headers = ["eps \\ delta"] + [f"{d:g}" for d in figure.deltas]
            rows = [[f"{eps:g}"] + ["in" if grid[i, j] else "out"
                                    for j in range(len(figure.deltas))]
                    for i, eps in enumerate(figure.epss)]
            blocks.append(format_table(
                headers, rows,
                title=f"alpha={alpha:g} [{model}] "
                      f"(inclusion rate {figure.inclusion_rate(model, alpha):.2f})"))
        blocks.append(
            f"  alpha={alpha:g}: eps<=delta advantage (mean metric difference) "
            f"{figure.eps_delta_asymmetry(alpha):+.3f}")
    blocks.append(
        f"overall inclusion: Pre-BO {figure.inclusion_rate('pre_bo'):.2f} "
        f"-> BO-enhanced {figure.inclusion_rate('bo_enhanced'):.2f}")
    return "\n".join(blocks)
