"""Experiment drivers regenerating the paper's tables and figures.

Every artefact of the evaluation section has a dedicated driver:

* :mod:`repro.experiments.table1`  -- the matrix study set (Table 1);
* :mod:`repro.experiments.figure1` -- calibration curves with Wilson bands;
* :mod:`repro.experiments.figure2` -- CI-inclusion heatmaps over (eps, delta);
* :mod:`repro.experiments.figure3` -- budget comparison box-plot statistics and
  the headline claims (50 % budget, ~10 % fewer steps, <=25 % reduction);
* :mod:`repro.experiments.pipeline` -- the shared end-to-end pipeline (grid
  dataset -> Pre-BO surrogate -> BO round -> BO-enhanced surrogate -> test
  grid reference data) with ``smoke`` and ``paper`` scale profiles;
* :mod:`repro.experiments.reporting` -- plain-text tables and JSON dumps.

The drivers print the same rows/series the paper plots; they do not render
images.
"""

from repro.experiments.pipeline import (
    ExperimentProfile,
    PipelineResult,
    profile_hash,
    run_pipeline,
    run_pipeline_cached,
    clear_pipeline_cache,
)
from repro.experiments.table1 import Table1Row, generate_table1, format_table1
from repro.experiments.figure1 import Figure1Result, run_figure1, format_figure1
from repro.experiments.figure2 import Figure2Result, run_figure2, format_figure2
from repro.experiments.figure3 import Figure3Result, run_figure3, format_figure3
from repro.experiments.reporting import format_table, to_jsonable, save_json

__all__ = [
    "ExperimentProfile",
    "PipelineResult",
    "profile_hash",
    "run_pipeline",
    "run_pipeline_cached",
    "clear_pipeline_cache",
    "Table1Row",
    "generate_table1",
    "format_table1",
    "Figure1Result",
    "run_figure1",
    "format_figure1",
    "Figure2Result",
    "run_figure2",
    "format_figure2",
    "Figure3Result",
    "run_figure3",
    "format_figure3",
    "format_table",
    "to_jsonable",
    "save_json",
]
