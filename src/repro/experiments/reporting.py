"""Plain-text tables and JSON persistence for experiment outputs."""

from __future__ import annotations

import dataclasses
import json
import os
from typing import Any, Iterable, Sequence

import numpy as np

__all__ = ["format_table", "format_value", "to_jsonable", "save_json"]


def format_value(value: Any, *, precision: int = 4) -> str:
    """Human-friendly rendering of one table cell."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float) or isinstance(value, np.floating):
        value = float(value)
        if value != 0.0 and (abs(value) >= 1e4 or abs(value) < 1e-3):
            return f"{value:.2e}"
        return f"{value:.{precision}g}"
    if value is None:
        return "-"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[Any]], *,
                 title: str | None = None, precision: int = 4) -> str:
    """Render a fixed-width text table (the benchmark harness prints these)."""
    rendered_rows = [[format_value(cell, precision=precision) for cell in row]
                     for row in rows]
    widths = [len(str(header)) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    separator = "-+-".join("-" * width for width in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(str(header).ljust(width)
                            for header, width in zip(headers, widths)))
    lines.append(separator)
    for row in rendered_rows:
        lines.append(" | ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)


def to_jsonable(value: Any) -> Any:
    """Recursively convert NumPy types / dataclasses to JSON-serialisable values."""
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    if isinstance(value, np.ndarray):
        return [to_jsonable(item) for item in value.tolist()]
    if isinstance(value, dict):
        return {str(key): to_jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set)):
        return [to_jsonable(item) for item in value]
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return to_jsonable(dataclasses.asdict(value))
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def save_json(payload: Any, path: str | os.PathLike) -> str:
    """Write ``payload`` as pretty-printed JSON, creating parent directories."""
    path = os.fspath(path)
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(to_jsonable(payload), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
