"""The user-facing MCMC preconditioner object.

Wraps :func:`repro.mcmc.inversion.estimate_inverse` in the common
:class:`~repro.precond.base.Preconditioner` interface so the Krylov solvers,
the evaluation layer and the benchmark harness can treat it exactly like the
classical baselines.  The two matrix-independent settings fixed by the paper
(fill factor ``2 * phi(A)`` and truncation threshold ``1e-9``) are the
defaults; the build report is retained for diagnostics.
"""

from __future__ import annotations

import scipy.sparse as sp

from repro.mcmc.inversion import (
    DEFAULT_DROP_TOLERANCE,
    DEFAULT_FILL_MULTIPLE,
    InversionReport,
    estimate_inverse,
)
from repro.mcmc.parameters import MCMCParameters
from repro.mcmc.walks import TransitionTable
from repro.parallel.executor import Executor
from repro.precond.base import MatrixPreconditioner

__all__ = ["MCMCPreconditioner"]


class MCMCPreconditioner(MatrixPreconditioner):
    """Sparse approximate inverse obtained by MCMC matrix inversion.

    Parameters
    ----------
    matrix:
        The system matrix ``A``.
    parameters:
        Algorithmic parameters ``(alpha, eps, delta)`` of the estimator.
    seed:
        Master seed of the per-block random streams (reproducible builds).
    executor:
        Optional :class:`~repro.parallel.Executor`; serial when ``None``.
    fill_multiple:
        Retained fill as a multiple of ``phi(A)`` (paper default: 2.0).
    drop_tolerance:
        Truncation threshold (paper default: ``1e-9``).
    transition_table:
        Optional pre-built :class:`~repro.mcmc.walks.TransitionTable` for
        this ``(A, alpha)`` pair; lets callers sweeping ``eps`` / ``delta``
        (replications, ablation grids) reuse one table across builds.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.matrices import laplacian_2d
    >>> from repro.mcmc import MCMCParameters, MCMCPreconditioner
    >>> A = laplacian_2d(8)
    >>> M = MCMCPreconditioner(A, MCMCParameters(alpha=1.0, eps=0.25, delta=0.25))
    >>> z = M.apply(np.ones(A.shape[0]))
    >>> z.shape
    (49,)
    """

    def __init__(self, matrix: sp.spmatrix, parameters: MCMCParameters, *,
                 seed: int | None = 0,
                 executor: Executor | None = None,
                 fill_multiple: float = DEFAULT_FILL_MULTIPLE,
                 drop_tolerance: float = DEFAULT_DROP_TOLERANCE,
                 transition_table: TransitionTable | None = None) -> None:
        approximate_inverse, report = estimate_inverse(
            matrix,
            parameters,
            seed=seed,
            executor=executor,
            fill_multiple=fill_multiple,
            drop_tolerance=drop_tolerance,
            transition_table=transition_table,
            return_report=True,
        )
        super().__init__(approximate_inverse, name="MCMCPreconditioner")
        self._parameters = parameters
        self._report = report

    @property
    def parameters(self) -> MCMCParameters:
        """The algorithmic parameters the preconditioner was built with."""
        return self._parameters

    @property
    def report(self) -> InversionReport:
        """Build report (chains per row, walk lengths, fill, contraction flag)."""
        return self._report

    def describe(self) -> str:
        return (f"MCMCPreconditioner({self._parameters.describe()}, "
                f"nnz={self.nnz}, contraction={self._report.contraction})")
