"""Markov chain Monte Carlo matrix inversion (MCMCMI).

This package implements the stochastic preconditioner generator at the heart
of the paper: the Ulam--von Neumann estimator of ``A^{-1}`` built from
independent random walks on the row graph of the Jacobi iteration matrix,
together with the paper's three algorithmic parameters

* ``alpha`` -- diagonal perturbation so the Neumann series converges,
* ``eps``   -- stochastic error controlling the number of chains per row,
* ``delta`` -- truncation error controlling the maximum walk length,

and the two matrix-independent settings fixed by the paper (preconditioner
fill factor ``2 * phi(A)`` and truncation threshold ``1e-9``).

Modules
-------
``parameters``      -- :class:`MCMCParameters`, bounds, the paper's 4x4x4 grid.
``walks``           -- vectorised random-walk engine.
``inversion``       -- row-wise inverse estimation and assembly.
``preconditioner``  -- :class:`MCMCPreconditioner` (the user-facing object).
``regenerative``    -- regenerative Ulam--von Neumann variant (single budget
                        parameter; the paper cites it as the most recent
                        algorithmic advance).
``diagnostics``     -- chain statistics and accuracy diagnostics.
"""

from repro.mcmc.parameters import (
    MCMCParameters,
    ParameterBounds,
    DEFAULT_BOUNDS,
    paper_parameter_grid,
    sample_parameters,
    num_chains_for_eps,
    walk_length_for_delta,
)
from repro.mcmc.walks import WalkEngine, WalkStatistics, TransitionTable
from repro.mcmc.inversion import estimate_inverse, InversionReport
from repro.mcmc.preconditioner import MCMCPreconditioner
from repro.mcmc.regenerative import RegenerativePreconditioner, regenerative_inverse
from repro.mcmc.diagnostics import (
    inversion_error,
    preconditioned_condition_estimate,
    chain_length_profile,
)

__all__ = [
    "MCMCParameters",
    "ParameterBounds",
    "DEFAULT_BOUNDS",
    "paper_parameter_grid",
    "sample_parameters",
    "num_chains_for_eps",
    "walk_length_for_delta",
    "WalkEngine",
    "WalkStatistics",
    "TransitionTable",
    "estimate_inverse",
    "InversionReport",
    "MCMCPreconditioner",
    "RegenerativePreconditioner",
    "regenerative_inverse",
    "inversion_error",
    "preconditioned_condition_estimate",
    "chain_length_profile",
]
