"""Algorithmic parameters of the MCMC matrix-inversion preconditioner.

The paper (Sec. 4.1) exposes three continuous parameters
``x_M = (alpha, eps, delta)`` plus a categorical Krylov-solver choice:

* ``alpha > 0``    -- scale of the added diagonal (``A + alpha * diag(A)``),
* ``eps in (0,1]`` -- stochastic error; the number of independent chains per
  row follows the classical probable-error rule ``N = ceil((0.6745 / eps)^2)``,
* ``delta in (0,1]`` -- truncation error; the maximum walk length ``l`` is the
  smallest integer with ``||B||^l <= delta``.

The training dataset of the paper is a 4x4x4 grid over
``alpha in {1,2,4,5}``, ``eps, delta in {1/2, 1/4, 1/8, 1/16}``; this module
reproduces that grid and provides continuous bounds for the Bayesian
optimiser, plus the array <-> dataclass conversions the surrogate needs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Iterable, Sequence

import numpy as np

from repro.config import default_rng
from repro.exceptions import ParameterError

__all__ = [
    "MCMCParameters",
    "ParameterBounds",
    "DEFAULT_BOUNDS",
    "PAPER_ALPHA_GRID",
    "PAPER_EPS_GRID",
    "PAPER_DELTA_GRID",
    "paper_parameter_grid",
    "sample_parameters",
    "num_chains_for_eps",
    "walk_length_for_delta",
]

#: Grid values used by the paper to build the training dataset (Sec. 4.2).
PAPER_ALPHA_GRID: tuple[float, ...] = (1.0, 2.0, 4.0, 5.0)
PAPER_EPS_GRID: tuple[float, ...] = (0.5, 0.25, 0.125, 0.0625)
PAPER_DELTA_GRID: tuple[float, ...] = (0.5, 0.25, 0.125, 0.0625)

#: Known Krylov solver identifiers for the categorical part of ``x_M``.
KNOWN_SOLVERS: tuple[str, ...] = ("gmres", "bicgstab", "cg")

#: Probable-error constant of the classical Monte Carlo error bound.
_PROBABLE_ERROR = 0.6745


def num_chains_for_eps(eps: float, *, cap: int = 10_000) -> int:
    """Number of independent Markov chains per row for stochastic error ``eps``.

    Uses the probable-error rule ``N = ceil((0.6745 / eps)^2)`` inherited from
    the classical Monte Carlo literature the MCMCMI method builds on; the cap
    protects against accidentally tiny ``eps`` values during BO exploration.
    """
    if not 0.0 < eps <= 1.0:
        raise ParameterError(f"eps must lie in (0, 1], got {eps}")
    n = int(math.ceil((_PROBABLE_ERROR / eps) ** 2))
    return int(min(max(n, 1), cap))


#: Walk-length cap used when the iteration matrix is not a contraction.  The
#: estimator diverges in that regime whatever the length, so spending long
#: walks on it would only waste time (and overflow weights); a short cap keeps
#: the divergence scenarios the paper deliberately includes cheap to evaluate.
DIVERGENT_WALK_CAP = 48


def walk_length_for_delta(delta: float, norm_b: float, *, cap: int = 512) -> int:
    """Maximum walk length for truncation error ``delta``.

    The chain is truncated at the smallest ``l`` with ``||B||^l <= delta``;
    when the iteration matrix is not a contraction (``||B|| >= 1``) a short
    cap (:data:`DIVERGENT_WALK_CAP`) is returned -- this is precisely the
    divergence regime that near-zero ``alpha`` samples of the paper expose the
    surrogate to, and longer walks cannot rescue it.
    """
    if not 0.0 < delta <= 1.0:
        raise ParameterError(f"delta must lie in (0, 1], got {delta}")
    if norm_b <= 0.0:
        return 1
    if norm_b >= 1.0:
        return int(min(DIVERGENT_WALK_CAP, cap))
    length = int(math.ceil(math.log(delta) / math.log(norm_b)))
    return int(min(max(length, 1), cap))


@dataclass(frozen=True)
class MCMCParameters:
    """The algorithmic parameter vector ``x_M`` of the MCMCMI preconditioner.

    Attributes
    ----------
    alpha:
        Diagonal perturbation scale (``> 0``; near-zero values typically make
        the Neumann series diverge, which the framework must tolerate).
    eps:
        Stochastic error in ``(0, 1]``; controls the number of chains.
    delta:
        Truncation error in ``(0, 1]``; controls the walk length.
    solver:
        Categorical Krylov solver (``gmres``, ``bicgstab`` or ``cg``).  The
        paper includes the solver as a surrogate input but does not recommend
        it; we keep the field for the same reason.
    """

    alpha: float
    eps: float
    delta: float
    solver: str = "gmres"

    def __post_init__(self) -> None:
        if not np.isfinite(self.alpha) or self.alpha < 0.0:
            raise ParameterError(f"alpha must be finite and >= 0, got {self.alpha}")
        if not 0.0 < self.eps <= 1.0:
            raise ParameterError(f"eps must lie in (0, 1], got {self.eps}")
        if not 0.0 < self.delta <= 1.0:
            raise ParameterError(f"delta must lie in (0, 1], got {self.delta}")
        if self.solver not in KNOWN_SOLVERS:
            raise ParameterError(
                f"unknown solver {self.solver!r}; expected one of {KNOWN_SOLVERS}")

    # -- conversions -------------------------------------------------------
    def to_array(self) -> np.ndarray:
        """Continuous part ``(alpha, eps, delta)`` as a float array."""
        return np.array([self.alpha, self.eps, self.delta], dtype=np.float64)

    @classmethod
    def from_array(cls, values: Sequence[float] | np.ndarray,
                   solver: str = "gmres") -> "MCMCParameters":
        """Build parameters from a 3-vector ``(alpha, eps, delta)``."""
        array = np.asarray(values, dtype=np.float64).ravel()
        if array.size != 3:
            raise ParameterError(
                f"expected 3 values (alpha, eps, delta), got {array.size}")
        return cls(alpha=float(array[0]), eps=float(array[1]),
                   delta=float(array[2]), solver=solver)

    def with_solver(self, solver: str) -> "MCMCParameters":
        """Copy with a different Krylov solver."""
        return replace(self, solver=solver)

    def clipped(self, bounds: "ParameterBounds") -> "MCMCParameters":
        """Copy with the continuous values clipped into ``bounds``."""
        lower, upper = bounds.as_arrays()
        clipped = np.clip(self.to_array(), lower, upper)
        return MCMCParameters.from_array(clipped, solver=self.solver)

    # -- derived quantities ------------------------------------------------
    def num_chains(self, *, cap: int = 10_000) -> int:
        """Chains per row implied by ``eps``."""
        return num_chains_for_eps(self.eps, cap=cap)

    def max_walk_length(self, norm_b: float, *, cap: int = 512) -> int:
        """Maximum walk length implied by ``delta`` for a given ``||B||``."""
        return walk_length_for_delta(self.delta, norm_b, cap=cap)

    def describe(self) -> str:
        """Compact human-readable form used in reports."""
        return (f"alpha={self.alpha:g}, eps={self.eps:g}, delta={self.delta:g}, "
                f"solver={self.solver}")


@dataclass(frozen=True)
class ParameterBounds:
    """Box bounds for the continuous parameters, used by BO and random search."""

    alpha: tuple[float, float] = (0.05, 5.0)
    eps: tuple[float, float] = (0.0625, 1.0)
    delta: tuple[float, float] = (0.0625, 1.0)

    def __post_init__(self) -> None:
        for name, (low, high) in (("alpha", self.alpha), ("eps", self.eps),
                                  ("delta", self.delta)):
            if not (np.isfinite(low) and np.isfinite(high)) or low > high:
                raise ParameterError(f"invalid bounds for {name}: ({low}, {high})")
        if self.alpha[0] < 0:
            raise ParameterError("alpha lower bound must be >= 0")
        for name, (low, high) in (("eps", self.eps), ("delta", self.delta)):
            if low <= 0 or high > 1:
                raise ParameterError(
                    f"{name} bounds must lie within (0, 1], got ({low}, {high})")

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Lower and upper bound arrays in ``(alpha, eps, delta)`` order."""
        lower = np.array([self.alpha[0], self.eps[0], self.delta[0]], dtype=np.float64)
        upper = np.array([self.alpha[1], self.eps[1], self.delta[1]], dtype=np.float64)
        return lower, upper

    def as_scipy_bounds(self) -> list[tuple[float, float]]:
        """Bounds in the list-of-pairs format expected by L-BFGS-B."""
        lower, upper = self.as_arrays()
        return [(float(lo), float(hi)) for lo, hi in zip(lower, upper)]

    def contains(self, params: MCMCParameters, *, atol: float = 1e-12) -> bool:
        """Whether the continuous part of ``params`` lies inside the box."""
        lower, upper = self.as_arrays()
        values = params.to_array()
        return bool(np.all(values >= lower - atol) and np.all(values <= upper + atol))

    def sample(self, rng: np.random.Generator) -> MCMCParameters:
        """Uniform random sample inside the box (solver fixed to GMRES)."""
        lower, upper = self.as_arrays()
        values = rng.uniform(lower, upper)
        return MCMCParameters.from_array(values)


#: Default continuous search box (covers the paper grid plus the near-zero
#: ``alpha`` divergence samples).
DEFAULT_BOUNDS = ParameterBounds()


def paper_parameter_grid(solvers: Iterable[str] = ("gmres", "bicgstab"),
                         *,
                         alphas: Sequence[float] = PAPER_ALPHA_GRID,
                         epss: Sequence[float] = PAPER_EPS_GRID,
                         deltas: Sequence[float] = PAPER_DELTA_GRID,
                         ) -> list[MCMCParameters]:
    """The paper's coarse grid: 4 x 4 x 4 configurations per solver.

    Every matrix of the training set contributed 64 labelled samples per
    solver (128 for the two-solver case); tests and smoke profiles pass
    smaller ``alphas``/``epss``/``deltas`` sequences to shrink the grid.
    """
    grid: list[MCMCParameters] = []
    for solver in solvers:
        for alpha in alphas:
            for eps in epss:
                for delta in deltas:
                    grid.append(MCMCParameters(alpha=float(alpha), eps=float(eps),
                                               delta=float(delta), solver=solver))
    return grid


def sample_parameters(n: int, *, bounds: ParameterBounds = DEFAULT_BOUNDS,
                      solver: str = "gmres",
                      seed: int | np.random.Generator | None = 0) -> list[MCMCParameters]:
    """Draw ``n`` uniform random parameter vectors inside ``bounds``."""
    if n < 0:
        raise ParameterError(f"n must be non-negative, got {n}")
    rng = default_rng(seed)
    return [bounds.sample(rng).with_solver(solver) for _ in range(n)]
