"""Vectorised random-walk engine for Ulam--von Neumann matrix inversion.

Given the Jacobi iteration matrix ``B`` (``A_hat = D (I - B)``), row ``i`` of
the Neumann sum ``S = sum_{k>=0} B^k`` is estimated by independent Markov
chains starting at state ``i``:

* transition probabilities are the *Monte Carlo almost-optimal* (MAO) choice
  ``p_{st} = |B_{st}| / sum_u |B_{su}|``;
* the walk carries a signed weight ``W_k`` with ``W_0 = 1`` and
  ``W_{k+1} = W_k * B_{s_k s_{k+1}} / p_{s_k s_{k+1}}
            = W_k * sign(B_{s_k s_{k+1}}) * sum_u |B_{s_k u}|``;
* at every step the walk deposits ``W_k`` into the estimate of ``S_{i, s_k}``;
* the walk stops when its length reaches the ``delta``-derived maximum, when
  its weight falls below the truncation threshold, or when it reaches a
  dead-end row (no non-zeros).

The engine is fully vectorised over walks: all chains of a block of starting
rows advance simultaneously using a padded per-row transition table, which is
what keeps a pure-NumPy implementation fast enough for the paper-scale
matrices.  Determinism is guaranteed by seeding each (row-block) task with its
own ``SeedSequence`` stream, so the result is independent of the executor.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.exceptions import ParameterError
from repro.sparse.csr import ensure_csr

__all__ = ["TransitionTable", "WalkStatistics", "WalkEngine",
           "UniformBlockSource"]


class UniformBlockSource:
    """Serves uniforms from pre-generated blocks, preserving stream order.

    ``numpy``'s ``Generator.random`` fills its output sequentially from the
    underlying bit stream, so splitting one large draw into consecutive
    slices yields *bitwise* the same values as separate per-step calls.
    :meth:`take` exploits that: it hands out consecutive slices of a
    pre-generated block and refills in bulk, so the walk engine issues one
    RNG call per ~``block_size`` uniforms instead of one per step, while
    every served value is identical to what per-step ``rng.random(k)`` calls
    would have produced.

    The only observable difference is the generator's *final* position: a
    refill may over-draw past the last value actually served (the remainder
    of the final block is discarded).  Callers that reuse the generator
    afterwards for other draws therefore must not assume the per-step
    position; within this library every walk batch owns a dedicated
    ``SeedSequence``-derived stream, so the over-draw is unobservable.
    """

    def __init__(self, rng: np.random.Generator, block_size: int = 8192) -> None:
        if block_size < 1:
            raise ParameterError(
                f"block_size must be >= 1, got {block_size}")
        self._rng = rng
        self._block_size = int(block_size)
        self._buffer = np.empty(0, dtype=np.float64)
        self._cursor = 0

    def take(self, count: int) -> np.ndarray:
        """The next ``count`` stream values (identical to ``rng.random(count)``)."""
        if count < 0:
            raise ParameterError(f"count must be non-negative, got {count}")
        available = self._buffer.size - self._cursor
        if count <= available:
            out = self._buffer[self._cursor:self._cursor + count]
            self._cursor += count
            return out
        out = np.empty(count, dtype=np.float64)
        out[:available] = self._buffer[self._cursor:]
        needed = count - available
        self._buffer = self._rng.random(max(self._block_size, needed))
        out[available:] = self._buffer[:needed]
        self._cursor = needed
        return out


@dataclass(frozen=True)
class WalkStatistics:
    """Aggregate statistics of one batch of walks (for diagnostics/benchmarks).

    The termination categories are **mutually exclusive**: every walk is
    attributed to exactly one of ``absorbed``, ``exploded``,
    ``truncated_by_weight``, ``truncated_by_length`` or ``still_active``, so

    ``absorbed + exploded + truncated_by_weight + truncated_by_length
    + still_active == n_walks``.

    When several termination conditions coincide at the same step, the
    documented priority order is ``absorbed > exploded > truncated_by_weight``
    (absorption is a property of the chain itself, weight-based truncation a
    property of the estimator).  ``truncated_by_length`` covers walks cut by
    the step cap; ``still_active`` counts walks a caller stopped advancing
    before any termination criterion fired (always 0 for
    :meth:`WalkEngine.estimate_rows`, which runs every walk to termination).
    """

    n_walks: int
    total_steps: int
    mean_length: float
    max_length: int
    truncated_by_weight: int
    truncated_by_length: int
    absorbed: int
    exploded: int = 0
    still_active: int = 0

    def merge(self, other: "WalkStatistics") -> "WalkStatistics":
        """Combine statistics from two batches."""
        n_walks = self.n_walks + other.n_walks
        total_steps = self.total_steps + other.total_steps
        mean = total_steps / n_walks if n_walks else 0.0
        return WalkStatistics(
            n_walks=n_walks,
            total_steps=total_steps,
            mean_length=mean,
            max_length=max(self.max_length, other.max_length),
            truncated_by_weight=self.truncated_by_weight + other.truncated_by_weight,
            truncated_by_length=self.truncated_by_length + other.truncated_by_length,
            absorbed=self.absorbed + other.absorbed,
            exploded=self.exploded + other.exploded,
            still_active=self.still_active + other.still_active,
        )

    @staticmethod
    def empty() -> "WalkStatistics":
        """Neutral element for :meth:`merge`."""
        return WalkStatistics(0, 0, 0.0, 0, 0, 0, 0)


class TransitionTable:
    """Padded per-row transition table derived from the iteration matrix ``B``.

    For each row the table stores, padded to the maximum row length:

    * the cumulative MAO transition probabilities (for inverse-CDF sampling),
    * the column indices of the non-zeros,
    * the weight multiplier ``B_{st} / p_{st} = sign(B_{st}) * sum_u |B_{su}|``.

    Rows without non-zeros are *absorbing*: a walk entering them terminates.

    The construction is fully vectorised over the CSR arrays (segment sums
    via ``np.add.reduceat``, a padded-scatter followed by a row-wise
    ``np.cumsum`` for the inverse-CDF tables) — no per-row Python loop — which
    makes the table build essentially free next to the walks themselves even
    for paper-scale matrices.
    """

    def __init__(self, b_matrix: sp.spmatrix) -> None:
        csr = ensure_csr(b_matrix)
        if csr.shape[0] != csr.shape[1]:
            raise ParameterError(
                f"iteration matrix must be square, got shape {csr.shape}")
        self._n = csr.shape[0]
        row_counts = np.diff(csr.indptr).astype(np.int64)
        max_nnz = int(row_counts.max()) if csr.nnz else 0
        self._max_nnz = max_nnz
        width = max(max_nnz, 1)

        self._columns = np.zeros((self._n, width), dtype=np.int64)
        self._multiplier = np.zeros((self._n, width), dtype=np.float64)
        self._row_abs_sum = np.zeros(self._n, dtype=np.float64)

        data, indices, indptr = csr.data, csr.indices, csr.indptr
        nnz = int(csr.nnz)
        if nnz == 0:
            self._row_nnz = np.zeros(self._n, dtype=np.int64)
            self._cumprob = np.ones((self._n, width), dtype=np.float64)
            return

        abs_data = np.abs(data)
        nonempty = row_counts > 0
        # Per-row sums of |B|: reduceat over the starts of the non-empty rows
        # (consecutive starts bound exactly one row's segment).
        self._row_abs_sum[nonempty] = np.add.reduceat(
            abs_data, indptr[:-1][nonempty])
        # Rows whose stored entries are all (numerically) zero are absorbing.
        self._row_nnz = np.where(self._row_abs_sum > 0.0, row_counts, 0)

        # Flat index of every stored entry in the padded (n, width) tables:
        # entry k of row r lands at r * width + k, i.e. its CSR position plus
        # a per-row shift of (r * width - indptr[r]).
        shifts = np.arange(self._n, dtype=np.int64) * width - indptr[:-1]
        flat = np.arange(nnz, dtype=np.int64) + np.repeat(shifts, row_counts)
        totals = np.repeat(self._row_abs_sum, row_counts)
        if np.any(self._row_abs_sum[nonempty] == 0.0):
            live = totals > 0.0
            flat, totals = flat[live], totals[live]
            data, indices, abs_data = data[live], indices[live], abs_data[live]

        probabilities = np.zeros(self._n * width, dtype=np.float64)
        probabilities[flat] = abs_data / totals
        # Row-wise cumulative sums reproduce the per-row inverse-CDF tables
        # (trailing zero padding after a row's last entry holds the row total,
        # which :meth:`step` can never mis-sample thanks to its clamp).
        cumprob = np.cumsum(probabilities.reshape(self._n, width), axis=1)
        # Guard against round-off: the last real cumulative value must be >= 1.
        last = np.maximum(self._row_nnz, 1) - 1
        cumprob[np.arange(self._n), last] = 1.0
        self._cumprob = cumprob

        self._columns.ravel()[flat] = indices
        self._multiplier.ravel()[flat] = np.sign(data) * totals

    # -- simple accessors ---------------------------------------------------
    @property
    def dimension(self) -> int:
        """Number of states (matrix dimension)."""
        return self._n

    @property
    def max_row_nnz(self) -> int:
        """Maximum number of non-zeros in any row (padding width)."""
        return self._max_nnz

    @property
    def row_abs_sums(self) -> np.ndarray:
        """``sum_u |B_{su}|`` per row (the weight multipliers' magnitude)."""
        return self._row_abs_sum

    @property
    def row_nnz(self) -> np.ndarray:
        """Stored non-zeros per row (0 for absorbing rows)."""
        return self._row_nnz

    @property
    def norm_inf_b(self) -> float:
        """``||B||_inf = max_s sum_u |B_{su}|`` of the iteration matrix."""
        return float(self._row_abs_sum.max()) if self._n else 0.0

    def is_absorbing(self, states: np.ndarray) -> np.ndarray:
        """Boolean mask of states that terminate a walk."""
        return self._row_nnz[states] == 0

    # -- sampling -----------------------------------------------------------
    def step(self, states: np.ndarray, rng: np.random.Generator | None = None,
             *, uniforms: np.ndarray | None = None
             ) -> tuple[np.ndarray, np.ndarray]:
        """Advance one step from ``states``.

        Returns ``(next_states, multipliers)`` where ``multipliers`` are the
        factors by which the walk weights must be multiplied.  Callers must
        not pass absorbing states (filter with :meth:`is_absorbing` first).
        The uniforms may be supplied directly (one per state, e.g. from a
        :class:`UniformBlockSource`) instead of drawn from ``rng``.
        """
        if states.size == 0:
            return states.copy(), np.empty(0, dtype=np.float64)
        if uniforms is None:
            if rng is None:
                raise ParameterError("step needs either rng or uniforms")
            uniforms = rng.random(states.size)
        elif uniforms.size != states.size:
            raise ParameterError(
                f"got {uniforms.size} uniforms for {states.size} states")
        cumulative = self._cumprob[states]
        # Index of the first cumulative probability >= u (inverse-CDF sampling).
        choice = np.sum(cumulative < uniforms[:, None], axis=1)
        # Round-off guard: never exceed the row's non-zero count.
        choice = np.minimum(choice, np.maximum(self._row_nnz[states] - 1, 0))
        next_states = self._columns[states, choice]
        multipliers = self._multiplier[states, choice]
        return next_states, multipliers


class WalkEngine:
    """Runs batches of Ulam--von Neumann walks and accumulates row estimates.

    Parameters
    ----------
    table:
        Pre-computed :class:`TransitionTable` for the iteration matrix ``B``.
    weight_cutoff:
        Walks whose absolute weight drops below this value are truncated
        (this implements the ``delta`` truncation-error criterion at the level
        of individual chains).
    max_steps:
        Hard upper bound on the walk length (the ``delta``-derived length for
        contractions, a safety cap otherwise).
    rng_block_size:
        Uniform draws are pre-generated in blocks of (at least) this many
        values instead of one ``rng.random`` call per step; see
        :class:`UniformBlockSource`.  The estimates are bitwise identical to
        the historical per-step draws for any block size — only RNG call
        overhead changes — so this is purely a performance knob (short walks
        on small matrices previously spent a measurable fraction of their
        time in per-step RNG dispatch).
    """

    #: Walks whose weight magnitude exceeds this bound are terminated: the
    #: Neumann series is clearly divergent and letting the weight grow further
    #: only produces floating-point overflow (the divergence scenarios the
    #: paper deliberately includes, e.g. near-zero ``alpha``, hit this path).
    WEIGHT_EXPLOSION_CAP = 1e8

    #: Default pre-generated uniform block size (one RNG call per ~8k draws).
    DEFAULT_RNG_BLOCK_SIZE = 8192

    def __init__(self, table: TransitionTable, *, weight_cutoff: float,
                 max_steps: int,
                 rng_block_size: int = DEFAULT_RNG_BLOCK_SIZE) -> None:
        if weight_cutoff < 0:
            raise ParameterError(
                f"weight_cutoff must be non-negative, got {weight_cutoff}")
        if max_steps < 1:
            raise ParameterError(f"max_steps must be >= 1, got {max_steps}")
        if rng_block_size < 1:
            raise ParameterError(
                f"rng_block_size must be >= 1, got {rng_block_size}")
        self._table = table
        self._weight_cutoff = float(weight_cutoff)
        self._max_steps = int(max_steps)
        self._rng_block_size = int(rng_block_size)

    @property
    def max_steps(self) -> int:
        """Maximum number of transitions per walk."""
        return self._max_steps

    @property
    def weight_cutoff(self) -> float:
        """Relative weight below which a walk is truncated."""
        return self._weight_cutoff

    def estimate_rows(self, start_rows: np.ndarray, chains_per_row: int,
                      rng: np.random.Generator
                      ) -> tuple[np.ndarray, WalkStatistics]:
        """Estimate the Neumann-sum rows ``S[start_rows, :]``.

        Returns
        -------
        estimates:
            Dense array of shape ``(len(start_rows), n)`` holding the Monte
            Carlo estimate of ``sum_k B^k`` restricted to the requested rows.
        statistics:
            Aggregate :class:`WalkStatistics` for the batch.
        """
        start_rows = np.asarray(start_rows, dtype=np.int64).ravel()
        if chains_per_row < 1:
            raise ParameterError(
                f"chains_per_row must be >= 1, got {chains_per_row}")
        n_rows = start_rows.size
        n = self._table.dimension
        estimates = np.zeros((n_rows, n), dtype=np.float64)
        if n_rows == 0:
            return estimates, WalkStatistics.empty()

        # One walk per (row, chain) pair, all advanced in lock-step.
        walk_row = np.repeat(np.arange(n_rows, dtype=np.int64), chains_per_row)
        states = np.repeat(start_rows, chains_per_row)
        weights = np.ones(states.size, dtype=np.float64)
        n_walks = states.size

        # Step 0 contribution: the identity term of the Neumann series.
        np.add.at(estimates, (walk_row, states), weights)

        lengths = np.zeros(n_walks, dtype=np.int64)
        truncated_weight = 0
        truncated_length = 0
        absorbed = 0
        exploded_count = 0

        active = ~self._table.is_absorbing(states)
        absorbed += int(np.count_nonzero(~active))
        active_indices = np.flatnonzero(active)

        uniforms = UniformBlockSource(rng, self._rng_block_size)
        step = 0
        while active_indices.size and step < self._max_steps:
            step += 1
            current_states = states[active_indices]
            next_states, multipliers = self._table.step(
                current_states, uniforms=uniforms.take(current_states.size))
            new_weights = weights[active_indices] * multipliers

            states[active_indices] = next_states
            weights[active_indices] = new_weights
            lengths[active_indices] = step

            # Deposit the contribution of this step.
            np.add.at(estimates,
                      (walk_row[active_indices], next_states),
                      new_weights)

            # Decide which walks keep going.  Termination attribution follows
            # the documented priority order absorbed > exploded >
            # truncated_by_weight so the categories stay mutually exclusive.
            abs_weights = np.abs(new_weights)
            below_cutoff = abs_weights < self._weight_cutoff
            exploded = abs_weights > self.WEIGHT_EXPLOSION_CAP
            now_absorbing = self._table.is_absorbing(next_states)
            keep = ~(below_cutoff | now_absorbing | exploded)
            absorbed += int(np.count_nonzero(now_absorbing))
            exploded_count += int(np.count_nonzero(exploded & ~now_absorbing))
            truncated_weight += int(np.count_nonzero(below_cutoff
                                                     & ~now_absorbing
                                                     & ~exploded))
            active_indices = active_indices[keep]

        # Walks surviving to the step cap were truncated by length.
        truncated_length += int(active_indices.size)

        estimates /= float(chains_per_row)
        # Divergent parameter regimes can still overflow within a single step;
        # scrub non-finite values so downstream code sees a (useless but
        # well-formed) preconditioner rather than NaNs.
        if not np.all(np.isfinite(estimates)):
            estimates = np.nan_to_num(estimates, nan=0.0,
                                      posinf=self.WEIGHT_EXPLOSION_CAP,
                                      neginf=-self.WEIGHT_EXPLOSION_CAP)
        statistics = WalkStatistics(
            n_walks=n_walks,
            total_steps=int(lengths.sum()),
            mean_length=float(lengths.mean()) if n_walks else 0.0,
            max_length=int(lengths.max()) if n_walks else 0,
            truncated_by_weight=truncated_weight,
            truncated_by_length=truncated_length,
            absorbed=absorbed,
            exploded=exploded_count,
            still_active=0,
        )
        return estimates, statistics
