"""Diagnostics for MCMC matrix inversion.

Three kinds of checks are provided:

* accuracy of the stochastic inverse against the exact inverse / the
  deterministic truncated Neumann series (small matrices only),
* the effect of the preconditioner on the conditioning of ``P A``,
* walk-length profiles describing how the ``delta`` truncation behaves for a
  given matrix and parameter choice.

These are used by the unit tests, the ablation benchmarks and the examples;
they are not needed on the hot path of the tuning framework.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.exceptions import ParameterError
from repro.mcmc.parameters import MCMCParameters
from repro.mcmc.walks import TransitionTable, WalkEngine
from repro.sparse.csr import ensure_csr, validate_square
from repro.sparse.norms import condition_number
from repro.sparse.splitting import jacobi_splitting, perturb_diagonal

__all__ = [
    "inversion_error",
    "preconditioned_condition_estimate",
    "chain_length_profile",
]


def inversion_error(matrix: sp.spmatrix, approximate_inverse: sp.spmatrix, *,
                    alpha: float = 0.0, ord: str = "fro") -> float:
    """Relative error of ``P`` as an inverse of the perturbed matrix.

    Computes ``||P A_hat - I|| / ||I||`` with ``A_hat = A + alpha * diag(A)``;
    the Frobenius norm is the default.  Only sensible for small matrices since
    the product is formed explicitly.
    """
    csr = validate_square(matrix)
    approx = ensure_csr(approximate_inverse)
    if approx.shape != csr.shape:
        raise ParameterError(
            f"shape mismatch: A is {csr.shape}, P is {approx.shape}")
    perturbed = perturb_diagonal(csr, alpha)
    n = csr.shape[0]
    residual = (approx @ perturbed - sp.identity(n, format="csr")).tocsr()
    if ord == "fro":
        return float(sp.linalg.norm(residual, "fro") / np.sqrt(n))
    if ord == "inf":
        return float(np.abs(residual).sum(axis=1).max())
    raise ParameterError(f"unsupported norm {ord!r}; use 'fro' or 'inf'")


def preconditioned_condition_estimate(matrix: sp.spmatrix,
                                      approximate_inverse: sp.spmatrix) -> float:
    """Condition number of the left-preconditioned operator ``P A``.

    Dense computation -- intended for the small matrices of the study set to
    verify that a successful preconditioner indeed lowers ``kappa``.
    """
    csr = validate_square(matrix)
    approx = ensure_csr(approximate_inverse)
    product = (approx @ csr).tocsr()
    return condition_number(product)


def chain_length_profile(matrix: sp.spmatrix, parameters: MCMCParameters, *,
                         seed: int | None = 0,
                         sample_rows: int | None = None) -> dict[str, float]:
    """Profile the walk lengths implied by ``parameters`` on ``matrix``.

    Returns a dictionary with the configured chain count, the ``delta``-derived
    maximum walk length, the observed mean/max length and the fractions of
    walks terminated by each mechanism.  ``sample_rows`` limits the profiling
    to the first rows (useful for large matrices).
    """
    csr = validate_square(matrix)
    split = jacobi_splitting(csr, parameters.alpha)
    table = TransitionTable(split.iteration_matrix)
    max_length = parameters.max_walk_length(split.norm_inf_b)
    engine = WalkEngine(table, weight_cutoff=parameters.delta, max_steps=max_length)
    n = csr.shape[0]
    rows = np.arange(n if sample_rows is None else min(sample_rows, n))
    rng = np.random.default_rng(seed)
    _, statistics = engine.estimate_rows(rows, parameters.num_chains(), rng)
    walks = max(statistics.n_walks, 1)
    return {
        "chains_per_row": float(parameters.num_chains()),
        "max_walk_length": float(max_length),
        "norm_inf_b": float(split.norm_inf_b),
        "mean_length": statistics.mean_length,
        "observed_max_length": float(statistics.max_length),
        "fraction_truncated_by_weight": statistics.truncated_by_weight / walks,
        "fraction_truncated_by_length": statistics.truncated_by_length / walks,
        "fraction_absorbed": statistics.absorbed / walks,
        "fraction_exploded": statistics.exploded / walks,
    }
