"""Assembly of the MCMC approximate inverse ``P ≈ A_hat^{-1}``.

The estimator decomposes as ``A_hat^{-1} = S D^{-1}`` with ``S = sum_k B^k``
estimated row-by-row by the walk engine.  This module orchestrates:

1. Jacobi splitting with the ``alpha`` diagonal perturbation,
2. partitioning of the rows into blocks (one task per block, balanced by nnz),
3. walk generation per block through an :class:`~repro.parallel.Executor`,
4. column scaling by ``D^{-1}``,
5. post-processing: drop entries below the truncation threshold and truncate
   to the target fill factor (the paper fixes these to ``1e-9`` and
   ``2 * phi(A)`` respectively).

Every block draws its randomness from a ``SeedSequence`` stream keyed by the
block index, so the assembled preconditioner does not depend on the executor.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.exceptions import ParameterError
from repro.logging_utils import get_logger
from repro.mcmc.parameters import MCMCParameters
from repro.mcmc.walks import TransitionTable, WalkEngine, WalkStatistics
from repro.parallel.executor import Executor, SerialExecutor
from repro.parallel.partition import Partition, partition_by_weight
from repro.parallel.rng import TaskRNGFactory
from repro.sparse.csr import (
    ensure_csr,
    fill_factor,
    truncate_to_fill_factor,
    validate_square,
)
from repro.sparse.splitting import (
    SplittingResult,
    jacobi_splitting,
    perturbed_diagonal,
)

__all__ = ["InversionReport", "estimate_inverse"]

_LOG = get_logger("mcmc")

#: Default truncation threshold of the paper (Sec. 4.1): effectively no truncation.
DEFAULT_DROP_TOLERANCE = 1e-9

#: Default fill-factor multiple of the paper: ``2 * phi(A)``.
DEFAULT_FILL_MULTIPLE = 2.0


@dataclass(frozen=True)
class InversionReport:
    """Metadata describing one MCMC inversion run."""

    parameters: MCMCParameters
    dimension: int
    chains_per_row: int
    max_walk_length: int
    norm_inf_b: float
    contraction: bool
    nnz_before_truncation: int
    nnz_after_truncation: int
    fill_factor: float
    statistics: WalkStatistics

    def describe(self) -> str:
        """One-line summary for logs and benchmark output."""
        return (f"n={self.dimension}, chains/row={self.chains_per_row}, "
                f"max_len={self.max_walk_length}, ||B||_inf={self.norm_inf_b:.3f}, "
                f"contraction={self.contraction}, nnz={self.nnz_after_truncation}, "
                f"phi(P)={self.fill_factor:.4f}")


#: Upper bound on the number of dense entries a single block may materialise.
_MAX_DENSE_BLOCK_ENTRIES = 5_000_000


def _estimate_block(block: Partition, engine: WalkEngine, chains_per_row: int,
                    rng_factory: TaskRNGFactory, inverse_diagonal: np.ndarray,
                    drop_tolerance: float) -> tuple[sp.csr_matrix, WalkStatistics]:
    """Worker: estimate and sparsify the inverse rows of one partition block.

    The dense accumulation buffer only ever covers ``block.size`` rows, which
    bounds peak memory even for large matrices; the column scaling by
    ``D^{-1}`` and the drop tolerance are applied before sparsification so the
    worker returns a compact CSR block.
    """
    rng = rng_factory.for_task(block.task_id)
    estimate, statistics = engine.estimate_rows(block.indices(), chains_per_row, rng)
    estimate *= inverse_diagonal[None, :]
    if drop_tolerance and drop_tolerance > 0.0:
        estimate[np.abs(estimate) < drop_tolerance] = 0.0
    return sp.csr_matrix(estimate), statistics


def estimate_inverse(matrix: sp.spmatrix, parameters: MCMCParameters, *,
                     seed: int | None = 0,
                     executor: Executor | None = None,
                     n_tasks: int | None = None,
                     fill_multiple: float = DEFAULT_FILL_MULTIPLE,
                     drop_tolerance: float = DEFAULT_DROP_TOLERANCE,
                     chain_cap: int = 10_000,
                     walk_length_cap: int = 512,
                     transition_table: TransitionTable | None = None,
                     return_report: bool = False,
                     ) -> sp.csr_matrix | tuple[sp.csr_matrix, InversionReport]:
    """Estimate ``P ≈ (A + alpha * diag(A))^{-1}`` by MCMC.

    Parameters
    ----------
    matrix:
        Square sparse matrix ``A``.
    parameters:
        Algorithmic parameters ``(alpha, eps, delta)``; the solver field is
        ignored here (it only matters to the evaluation layer).
    seed:
        Master seed for the per-block random streams.
    executor:
        Parallel executor; the serial executor is used when ``None``.
    n_tasks:
        Number of row blocks; defaults to ``executor.workers`` (at least 1).
    fill_multiple:
        The preconditioner keeps at most ``fill_multiple * phi(A)`` fill
        (paper default 2.0).  ``None`` or ``<= 0`` disables the constraint.
    drop_tolerance:
        Entries below this magnitude are dropped (paper default ``1e-9``).
    chain_cap, walk_length_cap:
        Safety caps for pathological parameter values during BO exploration.
    transition_table:
        Optional pre-built :class:`TransitionTable` for this ``(A, alpha)``
        pair.  The table only depends on the Jacobi splitting — not on
        ``eps`` / ``delta`` — so callers sweeping those parameters (the
        ablation grids, replicated evaluations) can build it once and stop
        re-deriving it on every call.  The caller is responsible for the
        table matching ``TransitionTable(jacobi_splitting(A, alpha)
        .iteration_matrix)``; only the dimension is validated here.
    return_report:
        When true, also return an :class:`InversionReport`.
    """
    csr = validate_square(matrix)
    if fill_multiple is not None and fill_multiple < 0:
        raise ParameterError(f"fill_multiple must be >= 0, got {fill_multiple}")

    if transition_table is None:
        split: SplittingResult = jacobi_splitting(csr, parameters.alpha)
        table = TransitionTable(split.iteration_matrix)
        diagonal = split.diagonal
        norm_inf_b = split.norm_inf_b
    else:
        if transition_table.dimension != csr.shape[0]:
            raise ParameterError(
                f"transition_table dimension {transition_table.dimension} "
                f"incompatible with matrix dimension {csr.shape[0]}")
        # The table already encodes B; only the (cheap) perturbed diagonal is
        # needed for the D^{-1} column scaling, and ||B||_inf is the largest
        # per-row weight multiplier the table stores.
        table = transition_table
        diagonal = perturbed_diagonal(csr, parameters.alpha)
        if np.any(diagonal == 0.0):
            raise ParameterError(
                "Jacobi splitting requires a non-zero diagonal; "
                "increase alpha or re-order the matrix")
        norm_inf_b = table.norm_inf_b
    chains_per_row = parameters.num_chains(cap=chain_cap)
    max_walk_length = parameters.max_walk_length(norm_inf_b, cap=walk_length_cap)
    engine = WalkEngine(table, weight_cutoff=parameters.delta,
                        max_steps=max_walk_length)

    executor = executor if executor is not None else SerialExecutor()
    n = csr.shape[0]
    if n_tasks is None:
        # At least one task per worker, and enough tasks that a single block's
        # dense accumulation buffer stays below the memory cap.
        memory_tasks = int(np.ceil(n * n / _MAX_DENSE_BLOCK_ENTRIES))
        n_tasks = max(executor.workers, memory_tasks, 1)
    weights = np.maximum(table.row_nnz, 1)
    blocks = partition_by_weight(weights, n_tasks)
    rng_factory = TaskRNGFactory(seed)
    inverse_diagonal = 1.0 / diagonal

    results = executor.map_tasks(
        lambda block: _estimate_block(block, engine, chains_per_row, rng_factory,
                                      inverse_diagonal, drop_tolerance),
        blocks,
    )

    statistics = WalkStatistics.empty()
    sparse_blocks: list[sp.csr_matrix] = []
    for _block, (rows_estimate, block_stats) in zip(blocks, results):
        sparse_blocks.append(rows_estimate)
        statistics = statistics.merge(block_stats)

    approx_inverse = ensure_csr(sp.vstack(sparse_blocks, format="csr"))
    nnz_before = approx_inverse.nnz
    if fill_multiple and fill_multiple > 0.0:
        target = min(max(fill_multiple * fill_factor(csr), 1.0 / n), 1.0)
        approx_inverse = truncate_to_fill_factor(approx_inverse, target)

    report = InversionReport(
        parameters=parameters,
        dimension=n,
        chains_per_row=chains_per_row,
        max_walk_length=max_walk_length,
        norm_inf_b=norm_inf_b,
        contraction=norm_inf_b < 1.0,
        nnz_before_truncation=nnz_before,
        nnz_after_truncation=approx_inverse.nnz,
        fill_factor=fill_factor(approx_inverse),
        statistics=statistics,
    )
    _LOG.debug("MCMC inversion: %s", report.describe())
    if return_report:
        return approx_inverse, report
    return approx_inverse
