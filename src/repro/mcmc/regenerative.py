"""Regenerative Ulam--von Neumann matrix inversion (extension).

The paper cites the "regenerative formulation that collapses multiple
hyperparameters into a single transition budget parameter" (Ghosh et al. 2025)
as the most recent algorithmic advance and explicitly notes that it "could be
also employed" in place of the classical estimator.  This module implements a
practical version of that idea so the framework can be exercised with either
estimator:

* instead of fixing the number of chains (``eps``) and the walk length
  (``delta``) separately, the caller supplies a *transition budget per row*;
* walks regenerate -- restart from the row's start state -- whenever they
  terminate (weight truncation or absorption), and keep regenerating until
  the budget of transitions is exhausted;
* the row estimate is the average contribution per regeneration cycle, i.e. a
  classical regenerative-process ratio estimator.

The estimator shares the transition table and vectorised stepping kernel with
the standard engine.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.exceptions import ParameterError
from repro.mcmc.walks import TransitionTable
from repro.precond.base import MatrixPreconditioner
from repro.sparse.csr import (
    ensure_csr,
    fill_factor,
    truncate_to_fill_factor,
    validate_square,
)
from repro.sparse.splitting import jacobi_splitting

__all__ = ["regenerative_inverse", "RegenerativePreconditioner"]


def regenerative_inverse(matrix: sp.spmatrix, *, alpha: float = 1.0,
                         transition_budget: int = 200,
                         weight_cutoff: float = 1e-3,
                         max_walk_length: int = 128,
                         seed: int | np.random.Generator | None = 0,
                         fill_multiple: float = 2.0,
                         drop_tolerance: float = 1e-9) -> sp.csr_matrix:
    """Estimate ``(A + alpha * diag(A))^{-1}`` with the regenerative estimator.

    Parameters
    ----------
    matrix:
        Square sparse matrix.
    alpha:
        Diagonal perturbation, as in the classical estimator.
    transition_budget:
        Total number of Markov transitions spent per row (the single tuning
        parameter of the regenerative formulation).
    weight_cutoff:
        Truncation threshold ending a regeneration cycle.
    max_walk_length:
        Safety cap on a single cycle length.
    seed:
        Seed of the random stream.
    fill_multiple, drop_tolerance:
        Post-processing knobs shared with the classical estimator.
    """
    if transition_budget < 1:
        raise ParameterError(
            f"transition_budget must be >= 1, got {transition_budget}")
    if max_walk_length < 1:
        raise ParameterError(f"max_walk_length must be >= 1, got {max_walk_length}")
    csr = validate_square(matrix)
    split = jacobi_splitting(csr, alpha)
    table = TransitionTable(split.iteration_matrix)
    rng = np.random.default_rng(seed)
    n = csr.shape[0]

    estimates = np.zeros((n, n), dtype=np.float64)
    start_rows = np.arange(n, dtype=np.int64)

    # All rows walk simultaneously; each row tracks its own remaining budget,
    # number of completed regeneration cycles and per-cycle accumulation.
    states = start_rows.copy()
    weights = np.ones(n, dtype=np.float64)
    cycle_steps = np.zeros(n, dtype=np.int64)
    budget_left = np.full(n, transition_budget, dtype=np.int64)
    cycles = np.zeros(n, dtype=np.int64)

    # Identity-term contribution of the first cycle.
    estimates[start_rows, start_rows] += 1.0

    active = budget_left > 0
    while np.any(active):
        absorbing = table.is_absorbing(states) & active
        # Regenerate walks that sit on an absorbing state.
        if np.any(absorbing):
            idx = np.flatnonzero(absorbing)
            cycles[idx] += 1
            states[idx] = start_rows[idx]
            weights[idx] = 1.0
            cycle_steps[idx] = 0
            estimates[idx, start_rows[idx]] += 1.0
        moving = np.flatnonzero(active & ~table.is_absorbing(states))
        if moving.size == 0:
            break
        next_states, multipliers = table.step(states[moving], rng)
        weights[moving] *= multipliers
        states[moving] = next_states
        cycle_steps[moving] += 1
        budget_left[moving] -= 1
        np.add.at(estimates, (moving, next_states), weights[moving])

        # Cycle termination: truncation by weight or by length -> regenerate.
        finished = np.flatnonzero(
            (np.abs(weights) < weight_cutoff) | (cycle_steps >= max_walk_length))
        finished = finished[budget_left[finished] > 0]
        if finished.size:
            cycles[finished] += 1
            states[finished] = start_rows[finished]
            weights[finished] = 1.0
            cycle_steps[finished] = 0
            estimates[finished, start_rows[finished]] += 1.0
        active = budget_left > 0

    # Ratio estimator: average contribution per regeneration cycle (the cycle
    # in progress when the budget ran out counts as a completed cycle).
    total_cycles = np.maximum(cycles + 1, 1).astype(np.float64)
    estimates /= total_cycles[:, None]
    estimates /= split.diagonal[None, :]

    approximate = ensure_csr(sp.csr_matrix(estimates))
    if drop_tolerance > 0.0 and approximate.nnz:
        mask = np.abs(approximate.data) < drop_tolerance
        if mask.any():
            approximate.data[mask] = 0.0
            approximate.eliminate_zeros()
    if fill_multiple and fill_multiple > 0.0:
        target = min(max(fill_multiple * fill_factor(csr), 1.0 / n), 1.0)
        approximate = truncate_to_fill_factor(approximate, target)
    return approximate


class RegenerativePreconditioner(MatrixPreconditioner):
    """Preconditioner built with the regenerative Ulam--von Neumann estimator.

    Exposes the single ``transition_budget`` knob of the regenerative
    formulation instead of the ``(eps, delta)`` pair.
    """

    def __init__(self, matrix: sp.spmatrix, *, alpha: float = 1.0,
                 transition_budget: int = 200,
                 seed: int | np.random.Generator | None = 0,
                 fill_multiple: float = 2.0,
                 drop_tolerance: float = 1e-9) -> None:
        approximate_inverse = regenerative_inverse(
            matrix,
            alpha=alpha,
            transition_budget=transition_budget,
            seed=seed,
            fill_multiple=fill_multiple,
            drop_tolerance=drop_tolerance,
        )
        super().__init__(approximate_inverse, name="RegenerativePreconditioner")
        self._alpha = alpha
        self._transition_budget = transition_budget

    @property
    def alpha(self) -> float:
        """Diagonal perturbation used before the splitting."""
        return self._alpha

    @property
    def transition_budget(self) -> int:
        """Transitions spent per row (the single regenerative parameter)."""
        return self._transition_budget
