"""Deterministic truncated Neumann-series preconditioner.

``M = (sum_{k<terms} B^k) D^{-1}`` for the (optionally alpha-perturbed) Jacobi
splitting -- exactly the quantity whose entries the MCMC walks estimate.  It
serves two purposes: a deterministic baseline for the benchmark comparison, and
the ground truth against which the stochastic estimator is validated in tests.
"""

from __future__ import annotations

import scipy.sparse as sp

from repro.precond.base import MatrixPreconditioner
from repro.sparse.splitting import neumann_series_inverse

__all__ = ["NeumannPreconditioner"]


class NeumannPreconditioner(MatrixPreconditioner):
    """Truncated Neumann-series approximate inverse.

    Parameters
    ----------
    matrix:
        The system matrix ``A``.
    terms:
        Number of Neumann terms (``1`` reduces to Jacobi scaling).
    alpha:
        Diagonal perturbation applied before the splitting, as in the MCMC
        preconditioner.
    drop_tolerance:
        Magnitude threshold applied during accumulation to limit fill-in.
    """

    def __init__(self, matrix: sp.spmatrix, *, terms: int = 4, alpha: float = 0.0,
                 drop_tolerance: float = 0.0) -> None:
        approximate_inverse = neumann_series_inverse(
            matrix, alpha, terms=terms, drop_tolerance=drop_tolerance)
        super().__init__(approximate_inverse, name="NeumannPreconditioner")
        self._terms = terms
        self._alpha = alpha

    @property
    def terms(self) -> int:
        """Number of Neumann terms used."""
        return self._terms

    @property
    def alpha(self) -> float:
        """Diagonal perturbation used before the splitting."""
        return self._alpha
