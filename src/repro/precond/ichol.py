"""Incomplete Cholesky factorisation with zero fill-in, IC(0).

For symmetric positive-definite matrices (the 2-D FD Laplacians of the study
set) ``A ≈ L L^T`` where ``L`` keeps the lower-triangular sparsity pattern of
``A``.  Application solves ``L y = r`` and ``L^T z = y``.  A diagonal shift is
applied automatically when a negative pivot appears (the standard remedy for
matrices that are only weakly positive definite), and the attempted shifts are
recorded for diagnostics.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.exceptions import PreconditionerError
from repro.precond.base import Preconditioner
from repro.sparse.csr import ensure_csr, is_symmetric, validate_square

__all__ = ["IncompleteCholeskyPreconditioner"]


def _ic0_factorise(matrix: sp.csr_matrix) -> sp.csr_matrix:
    """IC(0) on the lower-triangular pattern; raises on a non-positive pivot."""
    lower_pattern = sp.tril(matrix, k=0).tocsr()
    n = matrix.shape[0]
    lil = lower_pattern.tolil()
    rows_cols = [np.asarray(lil.rows[i], dtype=np.int64) for i in range(n)]
    rows_vals = [np.asarray(lil.data[i], dtype=np.float64) for i in range(n)]
    column_positions = [
        {int(col): pos for pos, col in enumerate(cols)} for cols in rows_cols
    ]
    diag = np.zeros(n, dtype=np.float64)

    for i in range(n):
        cols_i = rows_cols[i]
        vals_i = rows_vals[i]
        for pos_k, k in enumerate(cols_i):
            if k >= i:
                break
            # L[i, k] = (A[i, k] - sum_{j<k} L[i, j] L[k, j]) / L[k, k]
            accumulator = vals_i[pos_k]
            cols_k = rows_cols[k]
            vals_k = rows_vals[k]
            positions_i = column_positions[i]
            for pos_j in range(len(cols_k)):
                j = cols_k[pos_j]
                if j >= k:
                    break
                target = positions_i.get(int(j))
                if target is not None:
                    accumulator -= vals_i[target] * vals_k[pos_j]
            if diag[k] == 0.0:
                raise PreconditionerError(
                    f"IC(0) breakdown: zero pivot at row {k}")
            vals_i[pos_k] = accumulator / diag[k]
        position_diag = column_positions[i].get(i)
        if position_diag is None:
            raise PreconditionerError(
                f"IC(0) requires a structurally non-zero diagonal (row {i})")
        pivot = vals_i[position_diag] - float(
            np.sum(vals_i[:position_diag] ** 2)) if position_diag else vals_i[position_diag]
        if position_diag:
            # Only the strictly-lower entries of row i contribute to the pivot.
            strictly_lower = vals_i[:position_diag]
            pivot = vals_i[position_diag] - float(np.sum(strictly_lower ** 2))
        if pivot <= 0.0:
            raise PreconditionerError(
                f"IC(0) breakdown: non-positive pivot {pivot:.3e} at row {i}")
        vals_i[position_diag] = np.sqrt(pivot)
        diag[i] = vals_i[position_diag]
        rows_vals[i] = vals_i

    out = lower_pattern.tolil()
    for i in range(n):
        out.rows[i] = list(map(int, rows_cols[i]))
        out.data[i] = list(map(float, rows_vals[i]))
    return ensure_csr(out.tocsr())


class IncompleteCholeskyPreconditioner(Preconditioner):
    """IC(0) preconditioner for symmetric positive-definite matrices.

    Parameters
    ----------
    matrix:
        Symmetric matrix; a :class:`~repro.exceptions.PreconditionerError` is
        raised when the input is not symmetric.
    shift_step:
        Relative diagonal shift added (repeatedly) when the factorisation
        encounters a non-positive pivot.
    max_shifts:
        Maximum number of shift attempts before giving up.
    """

    def __init__(self, matrix: sp.spmatrix, *, shift_step: float = 1e-3,
                 max_shifts: int = 8) -> None:
        csr = validate_square(matrix)
        if not is_symmetric(csr, tol=1e-10):
            raise PreconditionerError(
                "Incomplete Cholesky requires a symmetric matrix")
        self._n = csr.shape[0]
        self._shifts_used = 0
        diag_scale = float(np.abs(csr.diagonal()).mean())
        shifted = csr
        last_error: PreconditionerError | None = None
        for attempt in range(max_shifts + 1):
            try:
                self._lower = _ic0_factorise(shifted)
                break
            except PreconditionerError as error:
                last_error = error
                self._shifts_used = attempt + 1
                shift = shift_step * (2.0 ** attempt) * diag_scale
                shifted = (csr + shift * sp.identity(self._n, format="csr")).tocsr()
        else:
            raise PreconditionerError(
                f"IC(0) failed after {max_shifts} diagonal shifts") from last_error

    @property
    def shape(self) -> tuple[int, int]:
        return (self._n, self._n)

    @property
    def nnz(self) -> int:
        return int(self._lower.nnz)

    @property
    def lower_factor(self) -> sp.csr_matrix:
        """The incomplete Cholesky factor ``L``."""
        return self._lower

    @property
    def shifts_used(self) -> int:
        """How many diagonal shifts were needed before the factorisation succeeded."""
        return self._shifts_used

    def apply(self, vector: np.ndarray) -> np.ndarray:
        from scipy.sparse.linalg import spsolve_triangular

        array = self._check_vector(vector)
        intermediate = spsolve_triangular(self._lower, array, lower=True)
        return spsolve_triangular(self._lower.T.tocsr(), intermediate, lower=False)
