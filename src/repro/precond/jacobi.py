"""Jacobi (diagonal) preconditioner.

The cheapest classical baseline: ``M = diag(A)^{-1}``.  Useful both as a sanity
baseline in the comparison benchmarks and as the limiting case of the MCMC
preconditioner when the walk length collapses to zero.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.exceptions import PreconditionerError
from repro.precond.base import MatrixPreconditioner
from repro.sparse.csr import validate_square

__all__ = ["JacobiPreconditioner"]


class JacobiPreconditioner(MatrixPreconditioner):
    """Diagonal-scaling preconditioner ``M = diag(A)^{-1}``."""

    def __init__(self, matrix: sp.spmatrix) -> None:
        csr = validate_square(matrix)
        diagonal = csr.diagonal()
        if np.any(diagonal == 0.0):
            raise PreconditionerError(
                "Jacobi preconditioner requires a non-zero diagonal")
        inverse = sp.diags(1.0 / diagonal, format="csr")
        super().__init__(inverse, name="JacobiPreconditioner")
