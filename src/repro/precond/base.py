"""Preconditioner interface shared by MCMC and classical baselines.

A preconditioner is, from the Krylov solvers' point of view, nothing more than
a linear operator ``z = M(r)`` approximating ``A^{-1} r``.  Left
preconditioning -- the scheme used throughout the paper (``P A x = P b``) --
only ever applies the operator to vectors, so the interface is a single
``apply`` method plus enough metadata for reporting.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np
import scipy.sparse as sp

from repro.exceptions import PreconditionerError
from repro.sparse.csr import ensure_csr, validate_square

__all__ = ["Preconditioner", "IdentityPreconditioner", "MatrixPreconditioner"]


class Preconditioner(ABC):
    """Abstract left preconditioner ``z = M(r) ≈ A^{-1} r``."""

    @abstractmethod
    def apply(self, vector: np.ndarray) -> np.ndarray:
        """Apply the preconditioner to a vector (or a stack of vectors)."""

    @property
    @abstractmethod
    def shape(self) -> tuple[int, int]:
        """Shape of the underlying operator."""

    @property
    def nnz(self) -> int:
        """Number of stored non-zeros (0 when the operator is matrix-free)."""
        return 0

    def as_linear_operator(self):
        """Expose the preconditioner as a :class:`scipy.sparse.linalg.LinearOperator`."""
        import scipy.sparse.linalg as spla

        return spla.LinearOperator(self.shape, matvec=self.apply, dtype=np.float64)

    def __call__(self, vector: np.ndarray) -> np.ndarray:
        return self.apply(vector)

    def describe(self) -> str:
        """Human-readable one-liner used in reports."""
        return f"{type(self).__name__}(shape={self.shape}, nnz={self.nnz})"

    def _check_vector(self, vector: np.ndarray) -> np.ndarray:
        array = np.asarray(vector, dtype=np.float64)
        if array.shape[0] != self.shape[1]:
            raise PreconditionerError(
                f"vector of length {array.shape[0]} incompatible with "
                f"preconditioner shape {self.shape}")
        return array


class IdentityPreconditioner(Preconditioner):
    """No-op preconditioner (the unpreconditioned reference of the metric)."""

    def __init__(self, n: int) -> None:
        if n <= 0:
            raise PreconditionerError(f"dimension must be positive, got {n}")
        self._n = n

    @property
    def shape(self) -> tuple[int, int]:
        return (self._n, self._n)

    def apply(self, vector: np.ndarray) -> np.ndarray:
        return np.array(self._check_vector(vector), copy=True)


class MatrixPreconditioner(Preconditioner):
    """Preconditioner defined by an explicit sparse matrix ``P`` (``z = P r``).

    This is the common base of the MCMC, Neumann and SPAI preconditioners,
    whose defining property -- emphasised by the paper -- is that application
    is a sparse matrix--vector product and therefore embarrassingly parallel.
    """

    def __init__(self, matrix: sp.spmatrix, *, name: str | None = None) -> None:
        self._matrix = validate_square(ensure_csr(matrix))
        self._name = name or type(self).__name__

    @property
    def matrix(self) -> sp.csr_matrix:
        """The explicit sparse approximate inverse ``P``."""
        return self._matrix

    @property
    def shape(self) -> tuple[int, int]:
        return self._matrix.shape

    @property
    def nnz(self) -> int:
        return int(self._matrix.nnz)

    def apply(self, vector: np.ndarray) -> np.ndarray:
        array = self._check_vector(vector)
        return self._matrix @ array

    def describe(self) -> str:
        return f"{self._name}(shape={self.shape}, nnz={self.nnz})"
