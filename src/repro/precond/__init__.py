"""Baseline preconditioners and the common preconditioner interface.

The paper positions MCMC matrix inversion against the classical algebraic
preconditioners of the literature review: incomplete factorisations (ILU / IC),
sparse approximate inverses (SPAI) and simple diagonal scaling.  This package
implements those baselines from scratch so that the benchmark harness can
compare them with the MCMC preconditioner under identical solver settings, and
defines the :class:`Preconditioner` interface consumed by the Krylov solvers.
"""

from repro.precond.base import Preconditioner, IdentityPreconditioner, MatrixPreconditioner
from repro.precond.jacobi import JacobiPreconditioner
from repro.precond.neumann import NeumannPreconditioner
from repro.precond.ilu import ILU0Preconditioner
from repro.precond.ichol import IncompleteCholeskyPreconditioner
from repro.precond.spai import SPAIPreconditioner
from repro.precond.factory import KNOWN_FAMILIES, make_preconditioner

__all__ = [
    "Preconditioner",
    "IdentityPreconditioner",
    "MatrixPreconditioner",
    "JacobiPreconditioner",
    "NeumannPreconditioner",
    "ILU0Preconditioner",
    "IncompleteCholeskyPreconditioner",
    "SPAIPreconditioner",
    "KNOWN_FAMILIES",
    "make_preconditioner",
]
