"""Sparse approximate inverse (SPAI) preconditioner with a fixed pattern.

Grote & Huckle's SPAI -- cited by the paper as the classical remedy to the
parallelism bottleneck of incomplete factorisations -- computes an explicit
sparse ``M ≈ A^{-1}`` by minimising ``||A M - I||_F`` column by column subject
to a prescribed sparsity pattern.  Each column is an independent small
least-squares problem, which is why the method parallelises as well as the
MCMC estimator.  We implement the static-pattern variant where the pattern of
``M`` is that of ``A`` (or of a power of ``A``).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.exceptions import PreconditionerError
from repro.precond.base import MatrixPreconditioner
from repro.sparse.csr import ensure_csr, validate_square
from repro.sparse.topk import row_topk_mask

__all__ = ["SPAIPreconditioner"]


def _spai_static_loop(matrix: sp.csr_matrix, pattern: sp.csr_matrix) -> sp.csr_matrix:
    """Reference per-column least-squares loop (kept for tests/benchmarks).

    One ``lstsq`` per column of ``M``; the vectorised :func:`_spai_static`
    below must reproduce its result within floating-point roundoff.
    """
    n = matrix.shape[0]
    csc = matrix.tocsc()
    pattern_csc = pattern.tocsc()
    columns: list[np.ndarray] = []
    rows: list[np.ndarray] = []
    values: list[np.ndarray] = []
    for j in range(n):
        support = pattern_csc.indices[pattern_csc.indptr[j]:pattern_csc.indptr[j + 1]]
        if support.size == 0:
            continue
        # Rows touched by the support columns of A.
        sub = csc[:, support]
        touched = np.unique(sub.indices)
        if touched.size == 0:
            continue
        dense_block = sub.toarray()[touched, :]
        rhs = np.zeros(touched.size, dtype=np.float64)
        position = np.searchsorted(touched, j)
        if position < touched.size and touched[position] == j:
            rhs[position] = 1.0
        solution, *_ = np.linalg.lstsq(dense_block, rhs, rcond=None)
        columns.append(np.full(support.size, j, dtype=np.int64))
        rows.append(support.astype(np.int64))
        values.append(solution)
    if not values:
        raise PreconditionerError("SPAI produced an empty preconditioner")
    coo = sp.coo_matrix(
        (np.concatenate(values), (np.concatenate(rows), np.concatenate(columns))),
        shape=(n, n),
    )
    return ensure_csr(coo.tocsr())


def _spai_static(matrix: sp.csr_matrix, pattern: sp.csr_matrix) -> sp.csr_matrix:
    """Solve the column-wise least-squares problems for a static pattern.

    Vectorised formulation: structured patterns (stencil matrices, powers of
    ``A``) produce many columns whose local problem has the *same* dense shape
    ``(touched rows, support size)``.  Columns are grouped by that shape and
    each group is solved with one batched QR factorisation instead of one
    ``lstsq`` call per column; rank-deficient or underdetermined groups fall
    back to the reference per-column ``lstsq`` so the minimum-norm semantics
    are preserved exactly where they matter.
    """
    n = matrix.shape[0]
    csc = matrix.tocsc()
    csc.sort_indices()
    pattern_csc = pattern.tocsc()
    pattern_csc.sort_indices()
    a_indptr = csc.indptr
    a_indices = csc.indices.astype(np.int64, copy=False)
    a_data = csc.data
    p_indptr = pattern_csc.indptr
    p_indices = pattern_csc.indices.astype(np.int64, copy=False)

    support_sizes = np.diff(p_indptr).astype(np.int64)
    if p_indices.size == 0:
        raise PreconditionerError("SPAI produced an empty preconditioner")

    # Expand every pattern entry (column j, slot t, support column c) into the
    # non-zeros of A[:, c]: quadruples (owner column j, slot t, row r, value v).
    entry_counts = (a_indptr[p_indices + 1] - a_indptr[p_indices]).astype(np.int64)
    total = int(entry_counts.sum())
    pat_owner = np.repeat(np.arange(n, dtype=np.int64), support_sizes)
    pat_slot = np.arange(p_indices.size, dtype=np.int64) - np.repeat(
        p_indptr[:-1].astype(np.int64), support_sizes)
    reps = np.repeat(np.arange(p_indices.size, dtype=np.int64), entry_counts)
    run_starts = np.cumsum(entry_counts) - entry_counts
    offsets = np.arange(total, dtype=np.int64) - np.repeat(run_starts, entry_counts)
    gather = np.repeat(a_indptr[p_indices].astype(np.int64), entry_counts) + offsets
    q_row = a_indices[gather]
    q_val = a_data[gather]
    q_owner = pat_owner[reps]
    q_slot = pat_slot[reps]

    # Sorted unique touched rows per column via one global key sort.  The key
    # packs (owner, row) so unique keys enumerate each column's touched set in
    # row order, matching np.unique in the reference loop.
    key = q_owner * np.int64(n) + q_row
    sorted_key = np.sort(key)
    if sorted_key.size:
        uniq_mask = np.empty(sorted_key.size, dtype=bool)
        uniq_mask[0] = True
        np.not_equal(sorted_key[1:], sorted_key[:-1], out=uniq_mask[1:])
        uniq_keys = sorted_key[uniq_mask]
    else:
        uniq_keys = sorted_key
    touched_counts = np.bincount((uniq_keys // n).astype(np.intp), minlength=n)
    touched_starts = np.concatenate(([0], np.cumsum(touched_counts)))
    q_rpos = np.searchsorted(uniq_keys, key) - touched_starts[q_owner]

    active = (support_sizes > 0) & (touched_counts > 0)
    active_cols = np.flatnonzero(active)
    if active_cols.size == 0:
        raise PreconditionerError("SPAI produced an empty preconditioner")

    # Group active columns by their dense-block shape (m, k).
    m_of = touched_counts[active_cols]
    k_of = support_sizes[active_cols]
    shape_key = m_of * (int(k_of.max()) + 1) + k_of
    group_keys, group_of_active = np.unique(shape_key, return_inverse=True)
    group_of = np.full(n, -1, dtype=np.int64)
    group_of[active_cols] = group_of_active
    local_of = np.empty(n, dtype=np.int64)
    for g in range(group_keys.size):
        members = active_cols[group_of_active == g]
        local_of[members] = np.arange(members.size)

    # Diagonal position of j inside its touched set (unit rhs entry).
    diag_key = active_cols * np.int64(n) + active_cols
    dpos = np.searchsorted(uniq_keys, diag_key)
    has_diag = (dpos < uniq_keys.size) & (uniq_keys[np.minimum(dpos, uniq_keys.size - 1)] == diag_key)
    drow = dpos - touched_starts[active_cols]

    # Order quadruples by group once so each group's scatter is a slice.
    q_group = group_of[q_owner]
    q_order = np.argsort(q_group, kind="stable")
    q_group_sorted = q_group[q_order]
    group_bounds = np.searchsorted(q_group_sorted, np.arange(group_keys.size + 1))

    values_by_column: dict[int, np.ndarray] = {}
    eps = np.finfo(np.float64).eps
    for g in range(group_keys.size):
        members = active_cols[group_of_active == g]
        m = int(touched_counts[members[0]])
        k = int(support_sizes[members[0]])
        sel = q_order[group_bounds[g]:group_bounds[g + 1]]
        blocks = np.zeros((members.size, m, k), dtype=np.float64)
        blocks[local_of[q_owner[sel]], q_rpos[sel], q_slot[sel]] = q_val[sel]
        rhs = np.zeros((members.size, m), dtype=np.float64)
        in_group = np.isin(active_cols, members, assume_unique=True)
        rhs_rows = drow[in_group]
        rhs_hit = has_diag[in_group]
        rhs[np.flatnonzero(rhs_hit), rhs_rows[rhs_hit]] = 1.0

        solved = np.zeros(members.size, dtype=bool)
        solutions = np.empty((members.size, k), dtype=np.float64)
        if m >= k:
            q_fac, r_fac = np.linalg.qr(blocks)
            r_diag = np.abs(np.diagonal(r_fac, axis1=1, axis2=2))
            full_rank = r_diag.min(axis=1) > eps * max(m, k) * np.maximum(
                r_diag.max(axis=1), np.finfo(np.float64).tiny)
            if full_rank.any():
                beta = np.matmul(q_fac[full_rank].transpose(0, 2, 1),
                                 rhs[full_rank, :, None])
                solutions[full_rank] = np.linalg.solve(r_fac[full_rank], beta)[:, :, 0]
                solved[full_rank] = True
        for idx in np.flatnonzero(~solved):
            solutions[idx], *_ = np.linalg.lstsq(blocks[idx], rhs[idx], rcond=None)
        for idx, j in enumerate(members):
            values_by_column[int(j)] = solutions[idx]

    data = np.concatenate([values_by_column[int(j)] for j in active_cols])
    rows = np.concatenate([p_indices[p_indptr[j]:p_indptr[j + 1]] for j in active_cols])
    cols = np.repeat(active_cols, support_sizes[active_cols])
    coo = sp.coo_matrix((data, (rows, cols)), shape=(n, n))
    return ensure_csr(coo.tocsr())


class SPAIPreconditioner(MatrixPreconditioner):
    """Static-pattern sparse approximate inverse ``min ||A M - I||_F``.

    Parameters
    ----------
    matrix:
        The system matrix ``A``.
    pattern_power:
        The sparsity pattern of ``M`` is taken from ``A^pattern_power``
        (1 = pattern of ``A``; 2 adds one level of fill and is noticeably more
        accurate at a quadratic cost in the pattern size).
    pattern_cap:
        Optional upper bound on the pattern size per column of ``M``.  Higher
        powers can fill in quickly; the cap keeps, per column, only the
        positions with the largest ``|A|^pattern_power`` weight (via the
        shared :func:`~repro.sparse.topk.row_topk_mask` kernel), bounding the
        cost of the least-squares solves.
    """

    def __init__(self, matrix: sp.spmatrix, *, pattern_power: int = 1,
                 pattern_cap: int | None = None) -> None:
        if pattern_power < 1:
            raise PreconditionerError(
                f"pattern_power must be >= 1, got {pattern_power}")
        if pattern_cap is not None and pattern_cap < 1:
            raise PreconditionerError(
                f"pattern_cap must be >= 1, got {pattern_cap}")
        csr = validate_square(matrix)
        # Powers of |A| carry the same sparsity pattern as the binarised
        # products (non-negative entries cannot cancel symbolically) while
        # also providing the magnitudes the per-column cap selects by.  The
        # structural pattern must not depend on scaling, so the magnitudes
        # are normalised and floored to 1e-150 before every product: any
        # pairwise product of floored entries then stays a normal float, so
        # no pattern position can underflow to an exact zero and be dropped
        # by the sparse matmul or ``eliminate_zeros``.
        floor = 1e-150
        magnitude = ensure_csr(abs(csr))
        if magnitude.nnz:
            magnitude.data /= magnitude.data.max()
            np.maximum(magnitude.data, floor, out=magnitude.data)
        accumulated = magnitude.copy()
        for _ in range(pattern_power - 1):
            accumulated = ensure_csr((accumulated @ magnitude).tocsr())
            if accumulated.nnz:
                np.maximum(accumulated.data, floor, out=accumulated.data)
        if pattern_cap is not None:
            csc = accumulated.tocsc()
            budgets = np.full(csc.shape[1], pattern_cap, dtype=np.int64)
            # CSC arrays are structurally CSR arrays of the transpose, so the
            # row-top-k kernel caps per *column* here.
            mask = row_topk_mask(csc.data, csc.indptr, budgets)
            csc.data = np.where(mask, csc.data, 0.0)
            csc.eliminate_zeros()
            accumulated = ensure_csr(csc.tocsr())
        pattern = accumulated.copy()
        pattern.data = np.ones_like(pattern.data)
        pattern = ensure_csr(pattern)
        approximate_inverse = _spai_static(csr, pattern)
        super().__init__(approximate_inverse, name="SPAIPreconditioner")
        self._pattern_power = pattern_power
        self._pattern_cap = pattern_cap
        self._pattern_nnz = int(pattern.nnz)

    @property
    def pattern_power(self) -> int:
        """Power of ``A`` whose pattern constrains the approximate inverse."""
        return self._pattern_power

    @property
    def pattern_cap(self) -> int | None:
        """Maximum retained pattern entries per column (``None`` = no cap)."""
        return self._pattern_cap

    @property
    def pattern_nnz(self) -> int:
        """Size of the sparsity pattern the least-squares solves were run on."""
        return self._pattern_nnz
