"""Sparse approximate inverse (SPAI) preconditioner with a fixed pattern.

Grote & Huckle's SPAI -- cited by the paper as the classical remedy to the
parallelism bottleneck of incomplete factorisations -- computes an explicit
sparse ``M ≈ A^{-1}`` by minimising ``||A M - I||_F`` column by column subject
to a prescribed sparsity pattern.  Each column is an independent small
least-squares problem, which is why the method parallelises as well as the
MCMC estimator.  We implement the static-pattern variant where the pattern of
``M`` is that of ``A`` (or of a power of ``A``).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.exceptions import PreconditionerError
from repro.precond.base import MatrixPreconditioner
from repro.sparse.csr import ensure_csr, validate_square
from repro.sparse.topk import row_topk_mask

__all__ = ["SPAIPreconditioner"]


def _spai_static(matrix: sp.csr_matrix, pattern: sp.csr_matrix) -> sp.csr_matrix:
    """Solve the column-wise least-squares problems for a static pattern."""
    n = matrix.shape[0]
    csc = matrix.tocsc()
    pattern_csc = pattern.tocsc()
    columns: list[np.ndarray] = []
    rows: list[np.ndarray] = []
    values: list[np.ndarray] = []
    for j in range(n):
        support = pattern_csc.indices[pattern_csc.indptr[j]:pattern_csc.indptr[j + 1]]
        if support.size == 0:
            continue
        # Rows touched by the support columns of A.
        sub = csc[:, support]
        touched = np.unique(sub.indices)
        if touched.size == 0:
            continue
        dense_block = sub.toarray()[touched, :]
        rhs = np.zeros(touched.size, dtype=np.float64)
        position = np.searchsorted(touched, j)
        if position < touched.size and touched[position] == j:
            rhs[position] = 1.0
        solution, *_ = np.linalg.lstsq(dense_block, rhs, rcond=None)
        columns.append(np.full(support.size, j, dtype=np.int64))
        rows.append(support.astype(np.int64))
        values.append(solution)
    if not values:
        raise PreconditionerError("SPAI produced an empty preconditioner")
    coo = sp.coo_matrix(
        (np.concatenate(values), (np.concatenate(rows), np.concatenate(columns))),
        shape=(n, n),
    )
    return ensure_csr(coo.tocsr())


class SPAIPreconditioner(MatrixPreconditioner):
    """Static-pattern sparse approximate inverse ``min ||A M - I||_F``.

    Parameters
    ----------
    matrix:
        The system matrix ``A``.
    pattern_power:
        The sparsity pattern of ``M`` is taken from ``A^pattern_power``
        (1 = pattern of ``A``; 2 adds one level of fill and is noticeably more
        accurate at a quadratic cost in the pattern size).
    pattern_cap:
        Optional upper bound on the pattern size per column of ``M``.  Higher
        powers can fill in quickly; the cap keeps, per column, only the
        positions with the largest ``|A|^pattern_power`` weight (via the
        shared :func:`~repro.sparse.topk.row_topk_mask` kernel), bounding the
        cost of the least-squares solves.
    """

    def __init__(self, matrix: sp.spmatrix, *, pattern_power: int = 1,
                 pattern_cap: int | None = None) -> None:
        if pattern_power < 1:
            raise PreconditionerError(
                f"pattern_power must be >= 1, got {pattern_power}")
        if pattern_cap is not None and pattern_cap < 1:
            raise PreconditionerError(
                f"pattern_cap must be >= 1, got {pattern_cap}")
        csr = validate_square(matrix)
        # Powers of |A| carry the same sparsity pattern as the binarised
        # products (non-negative entries cannot cancel symbolically) while
        # also providing the magnitudes the per-column cap selects by.  The
        # structural pattern must not depend on scaling, so the magnitudes
        # are normalised and floored to 1e-150 before every product: any
        # pairwise product of floored entries then stays a normal float, so
        # no pattern position can underflow to an exact zero and be dropped
        # by the sparse matmul or ``eliminate_zeros``.
        floor = 1e-150
        magnitude = ensure_csr(abs(csr))
        if magnitude.nnz:
            magnitude.data /= magnitude.data.max()
            np.maximum(magnitude.data, floor, out=magnitude.data)
        accumulated = magnitude.copy()
        for _ in range(pattern_power - 1):
            accumulated = ensure_csr((accumulated @ magnitude).tocsr())
            if accumulated.nnz:
                np.maximum(accumulated.data, floor, out=accumulated.data)
        if pattern_cap is not None:
            csc = accumulated.tocsc()
            budgets = np.full(csc.shape[1], pattern_cap, dtype=np.int64)
            # CSC arrays are structurally CSR arrays of the transpose, so the
            # row-top-k kernel caps per *column* here.
            mask = row_topk_mask(csc.data, csc.indptr, budgets)
            csc.data = np.where(mask, csc.data, 0.0)
            csc.eliminate_zeros()
            accumulated = ensure_csr(csc.tocsr())
        pattern = accumulated.copy()
        pattern.data = np.ones_like(pattern.data)
        pattern = ensure_csr(pattern)
        approximate_inverse = _spai_static(csr, pattern)
        super().__init__(approximate_inverse, name="SPAIPreconditioner")
        self._pattern_power = pattern_power
        self._pattern_cap = pattern_cap
        self._pattern_nnz = int(pattern.nnz)

    @property
    def pattern_power(self) -> int:
        """Power of ``A`` whose pattern constrains the approximate inverse."""
        return self._pattern_power

    @property
    def pattern_cap(self) -> int | None:
        """Maximum retained pattern entries per column (``None`` = no cap)."""
        return self._pattern_cap

    @property
    def pattern_nnz(self) -> int:
        """Size of the sparsity pattern the least-squares solves were run on."""
        return self._pattern_nnz
