"""Incomplete LU factorisation with zero fill-in, ILU(0).

The classical algebraic preconditioner of the paper's literature review
(Saad's ILU family).  The factorisation keeps exactly the sparsity pattern of
``A``: ``A ≈ L U`` with ``L`` unit lower triangular and ``U`` upper triangular,
and entries outside the pattern of ``A`` are discarded.  Application solves the
two triangular systems ``L y = r``, ``U z = y``.

The implementation follows the standard IKJ variant of the algorithm operating
directly on the CSR structure, with an optional diagonal shift to survive the
small pivots that make ILU "break down for indefinite matrices" -- precisely
the weakness the paper cites as motivation for stochastic preconditioners.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.exceptions import PreconditionerError
from repro.precond.base import Preconditioner
from repro.sparse.csr import ensure_csr, validate_square

__all__ = ["ILU0Preconditioner"]


def _ilu0_factorise(matrix: sp.csr_matrix, pivot_shift: float) -> sp.csr_matrix:
    """Return the combined LU factor stored in a single CSR matrix.

    The strict lower triangle holds ``L`` (unit diagonal implied) and the upper
    triangle including the diagonal holds ``U`` -- the classic compact storage.
    """
    n = matrix.shape[0]
    factor = matrix.copy().tolil()
    # Work on dense rows of the pattern for clarity; the pattern is sparse so
    # each row touches only its own non-zeros.
    rows_cols = [np.asarray(factor.rows[i], dtype=np.int64) for i in range(n)]
    rows_vals = [np.asarray(factor.data[i], dtype=np.float64) for i in range(n)]

    diag_value = np.zeros(n, dtype=np.float64)
    column_positions: list[dict[int, int]] = [
        {int(col): pos for pos, col in enumerate(cols)} for cols in rows_cols
    ]

    for i in range(n):
        cols_i = rows_cols[i]
        vals_i = rows_vals[i]
        # Eliminate using previously factorised rows k < i present in row i.
        for pos_k, k in enumerate(cols_i):
            if k >= i:
                break
            pivot = diag_value[k]
            if pivot == 0.0:
                raise PreconditionerError(
                    f"ILU(0) breakdown: zero pivot at row {k}")
            multiplier = vals_i[pos_k] / pivot
            vals_i[pos_k] = multiplier
            # Subtract multiplier * U[k, j] for j in pattern(i), j > k.
            cols_k = rows_cols[k]
            vals_k = rows_vals[k]
            positions_i = column_positions[i]
            for pos_j in range(len(cols_k)):
                j = cols_k[pos_j]
                if j <= k:
                    continue
                target = positions_i.get(int(j))
                if target is not None:
                    vals_i[target] -= multiplier * vals_k[pos_j]
        position_diag = column_positions[i].get(i)
        if position_diag is None:
            raise PreconditionerError(
                f"ILU(0) requires a structurally non-zero diagonal (row {i})")
        if abs(vals_i[position_diag]) < 1e-14:
            vals_i[position_diag] = pivot_shift if pivot_shift > 0 else 1e-14
        diag_value[i] = vals_i[position_diag]
        rows_vals[i] = vals_i

    out = matrix.copy().tolil()
    for i in range(n):
        out.rows[i] = list(map(int, rows_cols[i]))
        out.data[i] = list(map(float, rows_vals[i]))
    return ensure_csr(out.tocsr())


class ILU0Preconditioner(Preconditioner):
    """Zero fill-in incomplete LU preconditioner.

    Parameters
    ----------
    matrix:
        Square sparse matrix with a structurally non-zero diagonal.
    pivot_shift:
        Replacement value for (near-)zero pivots; ``0`` keeps a tiny epsilon.
    """

    def __init__(self, matrix: sp.spmatrix, *, pivot_shift: float = 0.0) -> None:
        csr = validate_square(matrix)
        self._factor = _ilu0_factorise(csr, pivot_shift)
        self._n = csr.shape[0]
        # Split the compact factor once so that apply() is two triangular solves.
        lower = sp.tril(self._factor, k=-1).tocsr() + sp.identity(self._n, format="csr")
        upper = sp.triu(self._factor, k=0).tocsr()
        self._lower = lower
        self._upper = upper

    @property
    def shape(self) -> tuple[int, int]:
        return (self._n, self._n)

    @property
    def nnz(self) -> int:
        return int(self._factor.nnz)

    @property
    def factor(self) -> sp.csr_matrix:
        """Compact LU factor (strict lower = L, upper incl. diagonal = U)."""
        return self._factor

    def apply(self, vector: np.ndarray) -> np.ndarray:
        from scipy.sparse.linalg import spsolve_triangular

        array = self._check_vector(vector)
        intermediate = spsolve_triangular(self._lower, array, lower=True,
                                          unit_diagonal=True)
        return spsolve_triangular(self._upper, intermediate, lower=False)
