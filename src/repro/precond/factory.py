"""Construction of preconditioners by family name.

The solve server's :class:`~repro.server.policy.PreconditionerPolicy` decides
on a *family* (a string) plus keyword parameters; this factory is the single
place that maps the decision onto a concrete object.  Keeping the mapping here
(rather than in the server) lets the CLI, benchmarks and tests build any
baseline by name as well.

The ``"mcmc"`` family is resolved lazily (the MCMC stack imports
:mod:`repro.precond.base`, so a module-level import would be circular); it
accepts the extra keywords ``parameters`` (an
:class:`~repro.mcmc.parameters.MCMCParameters`), ``seed`` and
``transition_table``.
"""

from __future__ import annotations

from typing import Any

import scipy.sparse as sp

from repro.exceptions import PreconditionerError
from repro.precond.base import Preconditioner
from repro.precond.ichol import IncompleteCholeskyPreconditioner
from repro.precond.ilu import ILU0Preconditioner
from repro.precond.jacobi import JacobiPreconditioner
from repro.precond.neumann import NeumannPreconditioner
from repro.precond.spai import SPAIPreconditioner

__all__ = ["KNOWN_FAMILIES", "make_preconditioner"]

#: Preconditioner families constructible by :func:`make_preconditioner`.
#: ``"none"`` is the identity (the solver runs unpreconditioned).
KNOWN_FAMILIES: tuple[str, ...] = (
    "none", "jacobi", "neumann", "ilu0", "ic0", "spai", "mcmc",
)


def make_preconditioner(family: str, matrix: sp.spmatrix,
                        **params: Any) -> Preconditioner | None:
    """Build the preconditioner of the given family for ``matrix``.

    Parameters
    ----------
    family:
        One of :data:`KNOWN_FAMILIES` (case insensitive).
    params:
        Family-specific keyword arguments forwarded to the constructor.

    Returns
    -------
    Preconditioner | None
        ``None`` for the ``"none"`` family (solvers treat it as identity).

    Raises
    ------
    PreconditionerError
        Unknown family, or the family's own construction failure (zero
        diagonal for Jacobi, breakdown for ILU, ...).
    """
    key = family.strip().lower()
    if key == "none":
        return None
    if key == "jacobi":
        return JacobiPreconditioner(matrix, **params)
    if key == "neumann":
        return NeumannPreconditioner(matrix, **params)
    if key == "ilu0":
        return ILU0Preconditioner(matrix, **params)
    if key == "ic0":
        return IncompleteCholeskyPreconditioner(matrix, **params)
    if key == "spai":
        return SPAIPreconditioner(matrix, **params)
    if key == "mcmc":
        from repro.mcmc.preconditioner import MCMCPreconditioner

        parameters = params.pop("parameters", None)
        if parameters is None:
            raise PreconditionerError(
                "the 'mcmc' family requires a 'parameters' keyword "
                "(an MCMCParameters instance)")
        return MCMCPreconditioner(matrix, parameters, **params)
    raise PreconditionerError(
        f"unknown preconditioner family {family!r}; "
        f"expected one of {KNOWN_FAMILIES}")
