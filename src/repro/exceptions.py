"""Exception hierarchy for the :mod:`repro` package.

All library-specific errors derive from :class:`ReproError` so that callers can
catch everything raised by the package with a single ``except`` clause while
still being able to discriminate individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by :mod:`repro`."""


class MatrixFormatError(ReproError):
    """A matrix did not satisfy the structural requirements of an algorithm.

    Raised, for instance, when a non-square matrix is passed to a solver or
    when a matrix contains an explicit zero diagonal entry where the Jacobi
    splitting requires a non-zero one.
    """


class ConvergenceError(ReproError):
    """An iterative algorithm failed to converge within its budget.

    Attributes
    ----------
    iterations:
        Number of iterations performed before giving up.
    residual_norm:
        Norm of the final residual (if available, otherwise ``None``).
    """

    def __init__(self, message: str, iterations: int | None = None,
                 residual_norm: float | None = None) -> None:
        super().__init__(message)
        self.iterations = iterations
        self.residual_norm = residual_norm


class ParameterError(ReproError):
    """An algorithmic parameter was outside its admissible range."""


class SpectralRadiusError(ReproError):
    """The Neumann-series iteration matrix has spectral radius >= 1.

    The Ulam--von Neumann estimator only converges when the iteration matrix
    obtained from the (perturbed) Jacobi splitting is a contraction.  This
    exception signals that a larger ``alpha`` perturbation is required.
    """

    def __init__(self, message: str, spectral_radius: float | None = None) -> None:
        super().__init__(message)
        self.spectral_radius = spectral_radius


class PreconditionerError(ReproError):
    """Construction or application of a preconditioner failed."""


class AutodiffError(ReproError):
    """Invalid operation on the reverse-mode autodiff tape."""


class GradcheckError(AutodiffError):
    """An analytic gradient disagrees with its finite-difference estimate."""


class GraphConstructionError(ReproError):
    """A graph could not be constructed from the given sparse matrix."""


class SurrogateError(ReproError):
    """Surrogate-model specific failure (shape mismatch, missing training...)."""


class AcquisitionError(ReproError):
    """Acquisition-function optimisation failed."""


class DatasetError(ReproError):
    """Dataset construction / splitting errors."""


class SearchSpaceError(ReproError):
    """Invalid hyper-parameter search-space specification."""


class ExperimentError(ReproError):
    """An experiment driver received an invalid configuration."""


class LearnError(ReproError):
    """Online-learning subsystem failure (registry, trainer, policy)."""
