"""HPO driver for the graph neural surrogate (Sec. 4.3).

Reproduces the paper's protocol at configurable scale: a TPE sampler proposes
surrogate configurations from the published search space (conv type,
aggregation, hidden widths, layer counts, learning rate, weight decay,
dropout), an ASHA scheduler stops unpromising trials early based on the
validation loss per epoch, and the best configuration by final validation loss
wins.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.dataset import SurrogateDataset
from repro.core.surrogate import GraphNeuralSurrogate, SurrogateConfig
from repro.core.training import Trainer, TrainingConfig
from repro.exceptions import SearchSpaceError
from repro.hpo.asha import ASHAScheduler, TrialStatus
from repro.hpo.space import Choice, IntUniform, LogUniform, SearchSpace, Uniform
from repro.hpo.tpe import TPESampler
from repro.logging_utils import get_logger

__all__ = ["surrogate_search_space", "HPOResult", "SurrogateHPO"]

_LOG = get_logger("hpo.tuner")


def surrogate_search_space(*, full: bool = False) -> SearchSpace:
    """The paper's surrogate search space (Sec. 4.3).

    ``full=True`` uses the published ranges (hidden dimensions up to 512,
    up to four layers everywhere); the default is a reduced space whose models
    train in seconds, preserving every dimension of the search.
    """
    if full:
        return SearchSpace({
            "conv_type": Choice(["edge", "gcn", "gatv2", "gine"]),
            "aggregation": Choice(["mean", "sum", "max", "multi"]),
            "graph_hidden": Choice([32, 64, 128, 256, 512]),
            "graph_layers": IntUniform(1, 4),
            "xa_hidden": Choice([8, 16, 32, 64]),
            "xa_layers": IntUniform(1, 4),
            "xm_hidden": Choice([4, 8, 16, 32]),
            "xm_layers": IntUniform(1, 4),
            "combined_hidden": Choice([32, 64, 128, 256, 512]),
            "combined_layers": IntUniform(1, 4),
            "learning_rate": LogUniform(1e-4, 1e-1),
            "weight_decay": LogUniform(1e-6, 1e-3),
            "dropout": Uniform(0.0, 0.2),
        })
    return SearchSpace({
        "conv_type": Choice(["edge", "gcn", "gine"]),
        "aggregation": Choice(["mean", "sum", "max"]),
        "graph_hidden": Choice([16, 32]),
        "graph_layers": IntUniform(1, 2),
        "xa_hidden": Choice([8, 16]),
        "xa_layers": IntUniform(1, 2),
        "xm_hidden": Choice([8, 16]),
        "xm_layers": IntUniform(1, 3),
        "combined_hidden": Choice([16, 32]),
        "combined_layers": IntUniform(1, 2),
        "learning_rate": LogUniform(1e-3, 3e-2),
        "weight_decay": LogUniform(1e-6, 1e-3),
        "dropout": Uniform(0.0, 0.2),
    })


@dataclass
class HPOResult:
    """Outcome of a surrogate hyperparameter search."""

    best_config: dict[str, Any]
    best_value: float
    history: list[tuple[dict[str, Any], float]] = field(default_factory=list)
    stopped_early: int = 0

    def as_surrogate_config(self, dataset: SurrogateDataset, *,
                            seed: int = 0) -> SurrogateConfig:
        """Convert the winning configuration to a :class:`SurrogateConfig`."""
        return _to_surrogate_config(self.best_config, dataset, seed=seed)


def _to_surrogate_config(config: dict[str, Any], dataset: SurrogateDataset, *,
                         seed: int = 0) -> SurrogateConfig:
    return SurrogateConfig(
        node_dim=dataset.node_feature_dim,
        edge_dim=dataset.edge_feature_dim,
        xa_dim=dataset.xa_dim,
        xm_dim=dataset.xm_dim,
        conv_type=str(config["conv_type"]),
        aggregation=str(config["aggregation"]),
        graph_hidden=int(config["graph_hidden"]),
        graph_layers=int(config["graph_layers"]),
        xa_hidden=int(config["xa_hidden"]),
        xa_layers=int(config["xa_layers"]),
        xm_hidden=int(config["xm_hidden"]),
        xm_layers=int(config["xm_layers"]),
        combined_hidden=int(config["combined_hidden"]),
        combined_layers=int(config["combined_layers"]),
        dropout=float(config["dropout"]),
        seed=seed,
    )


class SurrogateHPO:
    """TPE + ASHA hyperparameter optimisation of the surrogate.

    Parameters
    ----------
    dataset:
        Labelled dataset the candidate surrogates are trained on.
    space:
        Search space (defaults to the reduced version of the paper's space).
    max_epochs, grace_period, reduction_factor:
        ASHA settings (paper: 150 / 20 / 3).
    epochs_per_report:
        Trials report their validation loss to the scheduler every this many
        epochs.
    seed:
        Base seed for the sampler and the per-trial model initialisation.
    """

    def __init__(self, dataset: SurrogateDataset, *,
                 space: SearchSpace | None = None,
                 max_epochs: int = 30, grace_period: int = 5,
                 reduction_factor: int = 3, epochs_per_report: int = 5,
                 seed: int = 0) -> None:
        if epochs_per_report < 1:
            raise SearchSpaceError(
                f"epochs_per_report must be >= 1, got {epochs_per_report}")
        self.dataset = dataset
        self.space = space if space is not None else surrogate_search_space()
        self.max_epochs = max_epochs
        self.grace_period = grace_period
        self.reduction_factor = reduction_factor
        self.epochs_per_report = epochs_per_report
        self.seed = seed

    def _evaluate_trial(self, config: dict[str, Any], scheduler: ASHAScheduler,
                        trial_id: int) -> float:
        """Train one candidate, reporting to the scheduler; returns best val loss."""
        surrogate_config = _to_surrogate_config(config, self.dataset, seed=self.seed)
        model = GraphNeuralSurrogate(surrogate_config)
        train_indices, validation_indices = self.dataset.split(0.2, seed=self.seed)
        best_validation = float("inf")
        epochs_done = 0
        while epochs_done < self.max_epochs:
            chunk = min(self.epochs_per_report, self.max_epochs - epochs_done)
            trainer = Trainer(TrainingConfig(
                epochs=chunk, batch_size=128,
                learning_rate=float(config["learning_rate"]),
                weight_decay=float(config["weight_decay"]),
                patience=10 ** 6,  # early stopping handled by ASHA here
                min_epochs=1, seed=self.seed + trial_id))
            history = trainer.fit(model, self.dataset,
                                  train_indices=train_indices,
                                  validation_indices=validation_indices)
            epochs_done += history.epochs_run
            best_validation = min(best_validation, history.best_validation_loss)
            status = scheduler.report(trial_id, epochs_done, best_validation)
            if status is not TrialStatus.RUNNING:
                break
        return best_validation

    def run(self, n_trials: int = 8) -> HPOResult:
        """Run the search and return the best configuration found."""
        if n_trials < 1:
            raise SearchSpaceError(f"n_trials must be >= 1, got {n_trials}")
        sampler = TPESampler(self.space, seed=self.seed,
                             n_startup_trials=max(2, n_trials // 4))
        scheduler = ASHAScheduler(max_resource=self.max_epochs,
                                  grace_period=self.grace_period,
                                  reduction_factor=self.reduction_factor)
        history: list[tuple[dict[str, Any], float]] = []
        stopped = 0
        for _ in range(n_trials):
            config = sampler.suggest()
            trial = scheduler.add_trial(config)
            value = self._evaluate_trial(config, scheduler, trial.trial_id)
            if trial.status is TrialStatus.STOPPED:
                stopped += 1
            sampler.observe(config, value)
            history.append((config, value))
            _LOG.debug("HPO trial %d: val loss %.4f (%s)", trial.trial_id, value,
                       trial.status.value)
        best_config, best_value = sampler.best()
        return HPOResult(best_config=best_config, best_value=best_value,
                         history=history, stopped_early=stopped)
