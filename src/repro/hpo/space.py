"""Search-space primitives for hyperparameter optimisation.

A :class:`SearchSpace` is an ordered mapping from parameter names to
one-dimensional distributions; it can sample configurations, and it exposes
the per-dimension structure that the TPE sampler needs (continuous vs
categorical, optional log scale).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from repro.config import default_rng
from repro.exceptions import SearchSpaceError

__all__ = ["Uniform", "LogUniform", "IntUniform", "Choice", "SearchSpace"]


@dataclass(frozen=True)
class Uniform:
    """Continuous uniform distribution on ``[low, high]``."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if not np.isfinite(self.low) or not np.isfinite(self.high) or self.low >= self.high:
            raise SearchSpaceError(f"invalid Uniform bounds ({self.low}, {self.high})")

    def sample(self, rng: np.random.Generator):
        return float(rng.uniform(self.low, self.high))


@dataclass(frozen=True)
class LogUniform:
    """Log-uniform distribution on ``[low, high]`` (both strictly positive)."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if self.low <= 0 or self.high <= 0 or self.low >= self.high:
            raise SearchSpaceError(
                f"invalid LogUniform bounds ({self.low}, {self.high})")

    def sample(self, rng: np.random.Generator):
        return float(np.exp(rng.uniform(np.log(self.low), np.log(self.high))))


@dataclass(frozen=True)
class IntUniform:
    """Uniform integer distribution on ``{low, ..., high}`` (inclusive)."""

    low: int
    high: int

    def __post_init__(self) -> None:
        if self.low > self.high:
            raise SearchSpaceError(f"invalid IntUniform bounds ({self.low}, {self.high})")

    def sample(self, rng: np.random.Generator):
        return int(rng.integers(self.low, self.high + 1))


@dataclass(frozen=True)
class Choice:
    """Categorical distribution over an explicit list of options."""

    options: tuple

    def __init__(self, options: Sequence) -> None:
        if not options:
            raise SearchSpaceError("Choice requires at least one option")
        object.__setattr__(self, "options", tuple(options))

    def sample(self, rng: np.random.Generator):
        return self.options[int(rng.integers(0, len(self.options)))]


DistributionT = Uniform | LogUniform | IntUniform | Choice


class SearchSpace:
    """Ordered collection of named one-dimensional distributions."""

    def __init__(self, dimensions: dict[str, DistributionT]) -> None:
        if not dimensions:
            raise SearchSpaceError("search space must contain at least one dimension")
        self.dimensions = dict(dimensions)

    def __len__(self) -> int:
        return len(self.dimensions)

    def names(self) -> list[str]:
        """Parameter names in insertion order."""
        return list(self.dimensions)

    def sample(self, rng: np.random.Generator | int | None = None) -> dict[str, Any]:
        """Draw one configuration."""
        generator = default_rng(rng)
        return {name: dist.sample(generator) for name, dist in self.dimensions.items()}

    def sample_many(self, n: int, rng: np.random.Generator | int | None = None
                    ) -> list[dict[str, Any]]:
        """Draw ``n`` independent configurations."""
        if n < 0:
            raise SearchSpaceError(f"n must be non-negative, got {n}")
        generator = default_rng(rng)
        return [self.sample(generator) for _ in range(n)]

    def is_categorical(self, name: str) -> bool:
        """Whether dimension ``name`` is a :class:`Choice`."""
        return isinstance(self._dimension(name), Choice)

    def is_log_scaled(self, name: str) -> bool:
        """Whether dimension ``name`` is log-uniform."""
        return isinstance(self._dimension(name), LogUniform)

    def bounds(self, name: str) -> tuple[float, float]:
        """Numeric bounds of a non-categorical dimension."""
        dimension = self._dimension(name)
        if isinstance(dimension, Choice):
            raise SearchSpaceError(f"dimension {name!r} is categorical")
        return float(dimension.low), float(dimension.high)

    def _dimension(self, name: str) -> DistributionT:
        try:
            return self.dimensions[name]
        except KeyError as exc:
            raise SearchSpaceError(f"unknown dimension {name!r}") from exc
