"""Tree-structured Parzen Estimator (Bergstra et al. 2011).

The sampler the paper uses for the surrogate's hyperparameter optimisation.
For every dimension the observed configurations are split into a "good" set
(the best ``gamma`` fraction by objective value) and a "bad" set; two kernel
density estimates ``l(x)`` (good) and ``g(x)`` (bad) are fitted, and the next
configuration maximises the ratio ``l(x) / g(x)`` among a batch of candidates
drawn from ``l``.  Categorical dimensions use smoothed empirical frequencies
instead of KDEs.  Dimensions are treated independently (the classic "tree" of
one-dimensional estimators).
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from repro.config import default_rng
from repro.exceptions import SearchSpaceError
from repro.hpo.space import Choice, IntUniform, SearchSpace

__all__ = ["TPESampler", "tpe_search"]


class TPESampler:
    """Sequential configuration sampler implementing TPE.

    Parameters
    ----------
    space:
        The search space.
    gamma:
        Fraction of observations considered "good".
    n_startup_trials:
        Number of purely random configurations before the TPE model kicks in.
    n_ei_candidates:
        Candidates drawn from ``l`` per dimension when maximising ``l/g``.
    seed:
        Random seed.
    """

    def __init__(self, space: SearchSpace, *, gamma: float = 0.25,
                 n_startup_trials: int = 5, n_ei_candidates: int = 24,
                 seed: int | None = 0) -> None:
        if not 0.0 < gamma < 1.0:
            raise SearchSpaceError(f"gamma must lie in (0, 1), got {gamma}")
        if n_startup_trials < 1:
            raise SearchSpaceError(
                f"n_startup_trials must be >= 1, got {n_startup_trials}")
        if n_ei_candidates < 1:
            raise SearchSpaceError(
                f"n_ei_candidates must be >= 1, got {n_ei_candidates}")
        self.space = space
        self.gamma = gamma
        self.n_startup_trials = n_startup_trials
        self.n_ei_candidates = n_ei_candidates
        self._rng = default_rng(seed)
        self._configs: list[dict[str, Any]] = []
        self._values: list[float] = []

    # -- bookkeeping ------------------------------------------------------------
    def observe(self, config: dict[str, Any], value: float) -> None:
        """Record the objective value of an evaluated configuration."""
        self._configs.append(dict(config))
        self._values.append(float(value))

    @property
    def n_observations(self) -> int:
        """Number of observations recorded so far."""
        return len(self._values)

    def best(self) -> tuple[dict[str, Any], float]:
        """Best configuration observed so far (minimisation)."""
        if not self._values:
            raise SearchSpaceError("no observations recorded yet")
        index = int(np.argmin(self._values))
        return self._configs[index], self._values[index]

    # -- sampling ----------------------------------------------------------------
    def suggest(self) -> dict[str, Any]:
        """Propose the next configuration to evaluate."""
        if self.n_observations < self.n_startup_trials:
            return self.space.sample(self._rng)
        good_configs, bad_configs = self._split_observations()
        config: dict[str, Any] = {}
        for name in self.space.names():
            if self.space.is_categorical(name):
                config[name] = self._suggest_categorical(name, good_configs, bad_configs)
            else:
                config[name] = self._suggest_numeric(name, good_configs, bad_configs)
        return config

    def _split_observations(self) -> tuple[list[dict], list[dict]]:
        order = np.argsort(self._values)
        n_good = max(1, int(np.ceil(self.gamma * len(order))))
        good = [self._configs[i] for i in order[:n_good]]
        bad = [self._configs[i] for i in order[n_good:]] or good
        return good, bad

    # -- numeric dimensions --------------------------------------------------------
    def _to_internal(self, name: str, values: np.ndarray) -> np.ndarray:
        return np.log(values) if self.space.is_log_scaled(name) else values

    def _from_internal(self, name: str, value: float):
        dimension = self.space.dimensions[name]
        raw = float(np.exp(value)) if self.space.is_log_scaled(name) else float(value)
        low, high = self.space.bounds(name)
        raw = float(np.clip(raw, low, high))
        if isinstance(dimension, IntUniform):
            return int(round(raw))
        return raw

    def _kde_bandwidth(self, points: np.ndarray, low: float, high: float) -> float:
        if points.size < 2:
            return max((high - low) / 5.0, 1e-3)
        spread = float(points.std())
        silverman = 1.06 * max(spread, 1e-3) * points.size ** (-0.2)
        return max(silverman, (high - low) / 50.0)

    def _kde_logpdf(self, x: np.ndarray, points: np.ndarray, bandwidth: float
                    ) -> np.ndarray:
        diffs = (x[:, None] - points[None, :]) / bandwidth
        log_kernel = -0.5 * diffs ** 2 - np.log(bandwidth * np.sqrt(2 * np.pi))
        return np.logaddexp.reduce(log_kernel, axis=1) - np.log(points.size)

    def _suggest_numeric(self, name: str, good: list[dict], bad: list[dict]):
        low, high = self.space.bounds(name)
        internal_low, internal_high = (np.log(low), np.log(high)) \
            if self.space.is_log_scaled(name) else (low, high)
        good_points = self._to_internal(
            name, np.array([float(c[name]) for c in good], dtype=np.float64))
        bad_points = self._to_internal(
            name, np.array([float(c[name]) for c in bad], dtype=np.float64))
        bandwidth_good = self._kde_bandwidth(good_points, internal_low, internal_high)
        bandwidth_bad = self._kde_bandwidth(bad_points, internal_low, internal_high)

        # Candidates: draws from l(x) (jittered good points) plus a uniform share.
        n_from_good = max(1, int(0.8 * self.n_ei_candidates))
        picked = self._rng.choice(good_points, size=n_from_good, replace=True)
        candidates_good = picked + bandwidth_good * self._rng.standard_normal(n_from_good)
        candidates_uniform = self._rng.uniform(internal_low, internal_high,
                                               self.n_ei_candidates - n_from_good)
        candidates = np.clip(np.concatenate([candidates_good, candidates_uniform]),
                             internal_low, internal_high)
        log_l = self._kde_logpdf(candidates, good_points, bandwidth_good)
        log_g = self._kde_logpdf(candidates, bad_points, bandwidth_bad)
        best = candidates[int(np.argmax(log_l - log_g))]
        return self._from_internal(name, float(best))

    # -- categorical dimensions --------------------------------------------------------
    def _suggest_categorical(self, name: str, good: list[dict], bad: list[dict]):
        options = self.space.dimensions[name].options  # type: ignore[union-attr]
        prior = 1.0

        def weights(configs: list[dict]) -> np.ndarray:
            counts = np.full(len(options), prior, dtype=np.float64)
            for config in configs:
                counts[options.index(config[name])] += 1.0
            return counts / counts.sum()

        good_weights = weights(good)
        bad_weights = weights(bad)
        scores = good_weights / np.maximum(bad_weights, 1e-12)
        return options[int(np.argmax(scores))]


def tpe_search(objective: Callable[[dict[str, Any]], float], space: SearchSpace, *,
               n_trials: int = 20, gamma: float = 0.25, n_startup_trials: int = 5,
               seed: int | None = 0
               ) -> tuple[dict[str, Any], float, list[tuple[dict, float]]]:
    """Run a TPE-driven search; returns ``(best_config, best_value, history)``."""
    if n_trials < 1:
        raise SearchSpaceError(f"n_trials must be >= 1, got {n_trials}")
    sampler = TPESampler(space, gamma=gamma, n_startup_trials=n_startup_trials,
                         seed=seed)
    history: list[tuple[dict, float]] = []
    for _ in range(n_trials):
        config = sampler.suggest()
        value = float(objective(config))
        sampler.observe(config, value)
        history.append((config, value))
    best_config, best_value = sampler.best()
    return best_config, best_value, history
