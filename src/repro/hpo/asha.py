"""Asynchronous Successive Halving (ASHA) scheduler (Li et al. 2020).

The paper combines TPE sampling with an ASHA scheduler: trials report
intermediate results (validation loss per epoch); a trial may only advance
past a "rung" (a resource milestone) if its result is within the top
``1 / reduction_factor`` fraction of everything that has reached that rung, so
unpromising configurations are stopped early.  The implementation below is the
standard promotion rule driven synchronously by the caller, which is
sufficient for single-process experiments while preserving the algorithm's
decision logic (grace period, rung spacing, top-k promotion).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import SearchSpaceError

__all__ = ["TrialStatus", "Trial", "ASHAScheduler"]


class TrialStatus(enum.Enum):
    """Lifecycle states of a trial."""

    RUNNING = "running"
    STOPPED = "stopped"
    COMPLETED = "completed"


@dataclass
class Trial:
    """One hyperparameter configuration being evaluated."""

    trial_id: int
    config: dict
    status: TrialStatus = TrialStatus.RUNNING
    results: dict[int, float] = field(default_factory=dict)

    @property
    def last_resource(self) -> int:
        """Largest resource (epoch) this trial has reported at."""
        return max(self.results) if self.results else 0

    @property
    def best_result(self) -> float:
        """Best (minimum) reported objective value."""
        return min(self.results.values()) if self.results else float("inf")


class ASHAScheduler:
    """Successive-halving early stopping.

    Parameters
    ----------
    max_resource:
        Maximum resource (e.g. epochs) a trial may consume (the paper uses 150).
    grace_period:
        Minimum resource before a trial may be stopped (the paper uses 20).
    reduction_factor:
        Rung spacing and promotion fraction (the paper uses 3).
    """

    def __init__(self, *, max_resource: int = 150, grace_period: int = 20,
                 reduction_factor: int = 3) -> None:
        if max_resource < 1 or grace_period < 1:
            raise SearchSpaceError("max_resource and grace_period must be >= 1")
        if grace_period > max_resource:
            raise SearchSpaceError("grace_period must not exceed max_resource")
        if reduction_factor < 2:
            raise SearchSpaceError("reduction_factor must be >= 2")
        self.max_resource = int(max_resource)
        self.grace_period = int(grace_period)
        self.reduction_factor = int(reduction_factor)
        self.rungs: list[int] = self._compute_rungs()
        self._trials: dict[int, Trial] = {}
        self._next_id = 0

    def _compute_rungs(self) -> list[int]:
        rungs = []
        resource = self.grace_period
        while resource < self.max_resource:
            rungs.append(int(resource))
            resource *= self.reduction_factor
        rungs.append(self.max_resource)
        return rungs

    # -- trial management -------------------------------------------------------
    def add_trial(self, config: dict) -> Trial:
        """Register a new trial."""
        trial = Trial(trial_id=self._next_id, config=dict(config))
        self._trials[trial.trial_id] = trial
        self._next_id += 1
        return trial

    def trials(self) -> list[Trial]:
        """All registered trials."""
        return list(self._trials.values())

    def rung_for(self, resource: int) -> int | None:
        """The highest rung at or below ``resource`` (``None`` below the grace period)."""
        eligible = [rung for rung in self.rungs if rung <= resource]
        return eligible[-1] if eligible else None

    # -- the promotion rule ---------------------------------------------------------
    def report(self, trial_id: int, resource: int, value: float) -> TrialStatus:
        """Report an intermediate result; returns the trial's new status.

        A trial is stopped at a rung when its result is *not* within the best
        ``1 / reduction_factor`` fraction of all results reported at that rung
        so far (the asynchronous promotion rule).
        """
        try:
            trial = self._trials[trial_id]
        except KeyError as exc:
            raise SearchSpaceError(f"unknown trial id {trial_id}") from exc
        if trial.status is not TrialStatus.RUNNING:
            return trial.status
        trial.results[int(resource)] = float(value)

        if resource >= self.max_resource:
            trial.status = TrialStatus.COMPLETED
            return trial.status

        rung = self.rung_for(resource)
        if rung is None:
            return trial.status

        # Results of every trial that has reached this rung (best value at or
        # after the rung resource).
        rung_results: list[float] = []
        for other in self._trials.values():
            at_rung = [v for r, v in other.results.items() if r >= rung]
            if at_rung:
                rung_results.append(min(at_rung))
        if len(rung_results) < self.reduction_factor:
            return trial.status  # not enough information to cut anybody yet

        own = min(v for r, v in trial.results.items() if r >= rung)
        threshold_index = max(int(math.floor(len(rung_results) / self.reduction_factor)) - 1, 0)
        threshold = float(np.sort(rung_results)[threshold_index])
        if own > threshold:
            trial.status = TrialStatus.STOPPED
        return trial.status

    # -- summary ----------------------------------------------------------------------
    def best_trial(self) -> Trial:
        """The trial with the lowest reported objective value."""
        candidates = [t for t in self._trials.values() if t.results]
        if not candidates:
            raise SearchSpaceError("no trial has reported any result")
        return min(candidates, key=lambda t: t.best_result)
