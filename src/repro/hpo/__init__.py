"""Hyperparameter-optimisation substrate (Sec. 4.3 of the paper).

The paper tunes the surrogate architecture with the Tree-structured Parzen
Estimator and schedules trials with the Asynchronous Successive Halving
Algorithm (ASHA).  This package implements both from scratch, together with
the search-space primitives and a random-search baseline, and provides a
driver that applies them to the surrogate model of :mod:`repro.core`.
"""

from repro.hpo.space import (
    Uniform,
    LogUniform,
    IntUniform,
    Choice,
    SearchSpace,
)
from repro.hpo.random_search import random_search
from repro.hpo.tpe import TPESampler, tpe_search
from repro.hpo.asha import ASHAScheduler, Trial, TrialStatus
from repro.hpo.tuner import SurrogateHPO, surrogate_search_space, HPOResult

__all__ = [
    "Uniform",
    "LogUniform",
    "IntUniform",
    "Choice",
    "SearchSpace",
    "random_search",
    "TPESampler",
    "tpe_search",
    "ASHAScheduler",
    "Trial",
    "TrialStatus",
    "SurrogateHPO",
    "surrogate_search_space",
    "HPOResult",
]
