"""Random search baseline for hyperparameter optimisation."""

from __future__ import annotations

from typing import Any, Callable

from repro.config import default_rng
from repro.exceptions import SearchSpaceError
from repro.hpo.space import SearchSpace

__all__ = ["random_search"]


def random_search(objective: Callable[[dict[str, Any]], float], space: SearchSpace,
                  *, n_trials: int = 20,
                  seed: int | None = 0,
                  minimize: bool = True) -> tuple[dict[str, Any], float, list[tuple[dict, float]]]:
    """Evaluate ``n_trials`` random configurations and return the best.

    Returns ``(best_config, best_value, history)`` where ``history`` is the
    list of ``(config, value)`` pairs in evaluation order.
    """
    if n_trials < 1:
        raise SearchSpaceError(f"n_trials must be >= 1, got {n_trials}")
    rng = default_rng(seed)
    history: list[tuple[dict, float]] = []
    best_config: dict[str, Any] | None = None
    best_value = float("inf") if minimize else float("-inf")
    for _ in range(n_trials):
        config = space.sample(rng)
        value = float(objective(config))
        history.append((config, value))
        better = value < best_value if minimize else value > best_value
        if better:
            best_value = value
            best_config = config
    assert best_config is not None
    return best_config, best_value, history
