"""Micro-benchmark: batched SPAI least-squares vs the seed per-column loop.

``_spai_static`` used to run one dense ``np.linalg.lstsq`` per column of the
approximate inverse — the last of the per-row/per-column Python loops the
ROADMAP carried as perf debt.  The vectorised kernel groups columns whose
local problem shares a dense shape ``(touched rows, support size)`` and solves
each group with a single batched QR factorisation.  This benchmark runs the
seed loop (kept verbatim as ``_spai_static_loop``) against the batched kernel
on the paper's 2-D FD Laplacian stencil family and checks that

* the batched kernel is at least ``SPAI_REQUIRED_SPEEDUP``x faster, and
* both kernels produce the same approximate inverse to floating-point
  tolerance (same pattern, entrywise agreement).

Run directly (``PYTHONPATH=src python benchmarks/bench_spai.py``) or through
pytest.  ``SPAI_REQUIRED_SPEEDUP`` overrides the gate (CI uses a lower bar for
shared-runner noise).  When run directly with ``SPAI_JSON`` set, the measured
numbers are written there as JSON (CI artifact).
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.matrices.registry import get_matrix
from repro.precond.spai import SPAIPreconditioner, _spai_static, _spai_static_loop

#: Stencil matrix + one level of fill: the structured pattern that makes the
#: shape-grouped batching shine (a handful of shape classes for thousands of
#: columns), and the configuration the serve-time ``spai`` policy rule builds.
BENCH_MATRIX = "2DFDLaplace_64"
BENCH_PATTERN_POWER = 2
REQUIRED_SPEEDUP = float(os.environ.get("SPAI_REQUIRED_SPEEDUP", "4"))


def _best_time(fn, rounds: int = 5) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _bench_problem():
    matrix = get_matrix(BENCH_MATRIX)
    # Reuse the real pattern construction so the benchmark measures exactly
    # what SPAIPreconditioner(pattern_power=2) runs at serve time.
    preconditioner = SPAIPreconditioner(matrix, pattern_power=BENCH_PATTERN_POWER)
    pattern = abs(matrix) @ abs(matrix)
    pattern = pattern.tocsr()
    pattern.data = np.ones_like(pattern.data)
    return matrix, pattern, preconditioner


def bench_spai_static() -> dict:
    """Timings + equivalence checks of the static-pattern solve (no gate)."""
    matrix, pattern, _ = _bench_problem()
    loop_time = _best_time(lambda: _spai_static_loop(matrix, pattern), rounds=3)
    batched_time = _best_time(lambda: _spai_static(matrix, pattern), rounds=3)
    speedup = loop_time / batched_time

    reference = _spai_static_loop(matrix, pattern)
    batched = _spai_static(matrix, pattern)
    assert reference.nnz == batched.nnz, "batched SPAI changed the pattern"
    np.testing.assert_array_equal(reference.indptr, batched.indptr)
    np.testing.assert_array_equal(reference.indices, batched.indices)
    np.testing.assert_allclose(batched.data, reference.data,
                               rtol=1e-9, atol=1e-12)

    print(f"\nSPAI static solve ({BENCH_MATRIX}, pattern power "
          f"{BENCH_PATTERN_POWER}, {pattern.nnz} pattern entries): "
          f"loop {loop_time * 1e3:.1f} ms, batched {batched_time * 1e3:.1f} ms "
          f"-> {speedup:.1f}x")
    return {"matrix": BENCH_MATRIX, "pattern_power": BENCH_PATTERN_POWER,
            "pattern_nnz": int(pattern.nnz), "loop_s": loop_time,
            "batched_s": batched_time, "speedup": speedup}


def test_spai_static_speedup():
    """Batched SPAI least-squares must beat the per-column loop."""
    speedup = bench_spai_static()["speedup"]
    assert speedup >= REQUIRED_SPEEDUP, (
        f"batched SPAI only {speedup:.1f}x faster "
        f"(required {REQUIRED_SPEEDUP}x)")


if __name__ == "__main__":
    results = {"spai_static": bench_spai_static()}
    json_path = os.environ.get("SPAI_JSON")
    if json_path:
        with open(json_path, "w", encoding="utf-8") as handle:
            json.dump(results, handle, indent=2)
        print(f"wrote {json_path}")
    for name, metrics in results.items():
        assert metrics["speedup"] >= REQUIRED_SPEEDUP, (
            f"{name}: {metrics['speedup']:.1f}x < required {REQUIRED_SPEEDUP}x"
        )
