"""Micro-benchmark: vectorised walk-table / top-k kernels vs the seed loops.

The two per-row Python loops this PR removed dominated preconditioner build
time at paper scale: the :class:`~repro.mcmc.walks.TransitionTable`
constructor and the fill-factor truncation.  This benchmark runs the seed
loop oracles (kept verbatim in :mod:`repro.reference`) against the vectorised
kernels and checks, on a 10k-row random sparse matrix, that

* the vectorised kernels are at least ``REQUIRED_SPEEDUP``x faster, and
* their outputs agree with the loops to floating-point tolerance.

Run directly (``PYTHONPATH=src python benchmarks/bench_walk_table.py``) or
through pytest.  ``WALK_TABLE_REQUIRED_SPEEDUP`` overrides the gate (CI uses
a lower bar to tolerate shared-runner noise; the 10x paper-scale claim is
asserted at the default).  When run directly with ``WALK_TABLE_JSON`` set,
the measured numbers are additionally written there as JSON (CI artifact).
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.mcmc.walks import TransitionTable
from repro.reference import LoopTransitionTable, loop_truncate_to_fill_factor
from repro.sparse.csr import random_sparse, truncate_to_fill_factor

#: Benchmark matrix: 10k rows, ~5 nnz per row (the 2-D FD Laplacian stencil
#: width of the paper's study set).
BENCH_N = 10_000
BENCH_DENSITY = 0.0005
REQUIRED_SPEEDUP = float(os.environ.get("WALK_TABLE_REQUIRED_SPEEDUP", "10"))


def _best_time(fn, rounds: int = 5) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _bench_matrix():
    return random_sparse(BENCH_N, BENCH_DENSITY, seed=0)


def bench_transition_table() -> dict:
    """Timings + equivalence checks of the TransitionTable build (no gate)."""
    matrix = _bench_matrix()
    loop_time = _best_time(lambda: LoopTransitionTable(matrix))
    vector_time = _best_time(lambda: TransitionTable(matrix))
    speedup = loop_time / vector_time

    reference = LoopTransitionTable(matrix)
    table = TransitionTable(matrix)
    np.testing.assert_allclose(table.row_abs_sums, reference._row_abs_sum,
                               rtol=1e-12, atol=0.0)
    np.testing.assert_array_equal(table.row_nnz, reference._row_nnz)
    np.testing.assert_array_equal(table._columns, reference._columns)
    np.testing.assert_allclose(table._multiplier, reference._multiplier,
                               rtol=1e-12, atol=0.0)
    # Compare the inverse-CDF tables on the valid (non-padding) region; the
    # padding conventions differ (seed pads with 1.0, the vectorised build
    # leaves the row total there) and padding is never sampled.
    valid = (np.arange(table._cumprob.shape[1])[None, :]
             < reference._row_nnz[:, None])
    np.testing.assert_allclose(table._cumprob[valid], reference._cumprob[valid],
                               rtol=0.0, atol=1e-12)

    print(f"\nTransitionTable build (n={BENCH_N}): "
          f"loop {loop_time * 1e3:.1f} ms, vectorised {vector_time * 1e3:.1f} ms "
          f"-> {speedup:.1f}x")
    return {"n": BENCH_N, "loop_s": loop_time, "vectorised_s": vector_time,
            "speedup": speedup}


def test_transition_table_speedup():
    """Vectorised TransitionTable build must beat the seed loop by >= 10x."""
    speedup = bench_transition_table()["speedup"]
    assert speedup >= REQUIRED_SPEEDUP, (
        f"vectorised TransitionTable only {speedup:.1f}x faster "
        f"(required {REQUIRED_SPEEDUP}x)")


def bench_truncation() -> dict:
    """Timings + equivalence checks of the fill-factor truncation (no gate)."""
    matrix = _bench_matrix()
    target = 0.5 * matrix.nnz / (BENCH_N * BENCH_N)
    loop_time = _best_time(lambda: loop_truncate_to_fill_factor(matrix, target))
    vector_time = _best_time(lambda: truncate_to_fill_factor(matrix, target))
    speedup = loop_time / vector_time

    reference = loop_truncate_to_fill_factor(matrix, target)
    vectorised = truncate_to_fill_factor(matrix, target)
    # With continuous random data magnitudes are distinct, so the kept sets
    # match exactly (the vectorised version may additionally trim the one-per-
    # row floor overflow, which cannot trigger here).
    assert (reference != vectorised).nnz == 0

    print(f"\ntruncate_to_fill_factor (n={BENCH_N}): "
          f"loop {loop_time * 1e3:.1f} ms, vectorised {vector_time * 1e3:.1f} ms "
          f"-> {speedup:.1f}x")
    return {"n": BENCH_N, "loop_s": loop_time, "vectorised_s": vector_time,
            "speedup": speedup}


def test_truncate_to_fill_factor_speedup():
    """Vectorised row-top-k truncation must beat the seed loop by >= 10x."""
    speedup = bench_truncation()["speedup"]
    assert speedup >= REQUIRED_SPEEDUP, (
        f"vectorised truncation only {speedup:.1f}x faster "
        f"(required {REQUIRED_SPEEDUP}x)")


if __name__ == "__main__":
    results = {"transition_table": bench_transition_table(),
               "truncate_to_fill_factor": bench_truncation()}
    json_path = os.environ.get("WALK_TABLE_JSON")
    if json_path:
        with open(json_path, "w", encoding="utf-8") as handle:
            json.dump(results, handle, indent=2)
        print(f"wrote {json_path}")
    for name, metrics in results.items():
        assert metrics["speedup"] >= REQUIRED_SPEEDUP, (
            f"{name}: {metrics['speedup']:.1f}x < required {REQUIRED_SPEEDUP}x")
