"""Benchmark / regeneration of Figure 3 and the headline claims.

Prints the box-plot statistics of the per-candidate sample medians for grid
search (full budget) and the two BO strategies (half budget), the best
candidate of each strategy, and the derived headline numbers (step reduction,
budget fraction, BO-vs-grid improvement).
"""

from __future__ import annotations

from repro.experiments import format_figure3, run_figure3


def test_figure3_budget_comparison(benchmark, pipeline_result):
    """Regenerate the search-strategy comparison on the unseen test matrix."""
    figure = benchmark.pedantic(run_figure3, kwargs={"result": pipeline_result},
                                rounds=1, iterations=1)
    print()
    print(format_figure3(figure))

    grid = figure.strategies["grid"]
    bo_labels = [label for label in figure.strategies if label.startswith("bo_")]
    best_bo = min(figure.strategies[label].best_median for label in bo_labels)

    benchmark.extra_info["grid_best_median"] = grid.best_median
    benchmark.extra_info["bo_best_median"] = best_bo
    benchmark.extra_info["budget_fraction"] = figure.budget_fraction()
    benchmark.extra_info["bo_vs_grid_improvement"] = figure.bo_vs_grid_improvement()

    # Shape of the paper's claims:
    # (1) MCMC preconditioning reduces the step count on the unseen matrix,
    assert grid.best_median < 1.0
    # (2) the BO strategies use at most half the grid budget,
    assert figure.budget_fraction() <= 0.5 + 1e-9
    # (3) and their best recommendation is competitive with (not much worse
    #     than) exhaustive grid search despite the smaller budget.
    assert best_bo <= grid.best_median * 1.25
