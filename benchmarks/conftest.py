"""Shared fixtures of the benchmark harness.

The figure benchmarks all consume the output of the end-to-end experiment
pipeline; it is executed once per session (at the scale selected through the
``REPRO_PROFILE`` environment variable, ``smoke`` by default) and shared.
"""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentProfile, run_pipeline_cached


@pytest.fixture(scope="session")
def experiment_profile() -> ExperimentProfile:
    """Scale profile selected via ``REPRO_PROFILE`` (smoke by default)."""
    return ExperimentProfile.from_environment()


@pytest.fixture(scope="session")
def pipeline_result(experiment_profile):
    """The shared end-to-end pipeline run (grid dataset -> Pre-BO -> BO round)."""
    return run_pipeline_cached(experiment_profile)
