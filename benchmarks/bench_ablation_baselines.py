"""Ablation: MCMC preconditioning versus classical baselines.

The paper motivates MCMCMI against incomplete factorisations and sparse
approximate inverses; this benchmark measures GMRES iteration counts on the
study matrices with each preconditioner under identical solver settings.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.reporting import format_table
from repro.krylov import solve
from repro.matrices import laplacian_2d, unsteady_advection_diffusion
from repro.mcmc import MCMCParameters, MCMCPreconditioner
from repro.precond import (
    ILU0Preconditioner,
    JacobiPreconditioner,
    NeumannPreconditioner,
    SPAIPreconditioner,
)


def _iterations(matrix, preconditioner, maxiter=600):
    rhs = np.ones(matrix.shape[0])
    result = solve(matrix, rhs, solver="gmres", maxiter=maxiter,
                   restart=matrix.shape[0], preconditioner=preconditioner)
    return result.iterations if result.converged else maxiter


def test_preconditioner_comparison(benchmark):
    """Iteration counts of GMRES under MCMC and classical preconditioners."""
    matrices = {
        "2DFDLaplace_16": laplacian_2d(16),
        "unsteady_adv_diff_order2_0001": unsteady_advection_diffusion(15, order=2),
    }

    def run_comparison():
        table = {}
        for name, matrix in matrices.items():
            alpha = 0.5 if name.startswith("2DFD") else 4.0
            mcmc = MCMCPreconditioner(
                matrix, MCMCParameters(alpha=alpha, eps=0.125, delta=0.125), seed=0)
            row = {
                "none": _iterations(matrix, None),
                "jacobi": _iterations(matrix, JacobiPreconditioner(matrix)),
                "ilu0": _iterations(matrix, ILU0Preconditioner(matrix)),
                "spai": _iterations(matrix, SPAIPreconditioner(matrix)),
                "neumann(8)": _iterations(
                    matrix, NeumannPreconditioner(matrix, terms=8, alpha=0.0)),
                "mcmc": _iterations(matrix, mcmc),
            }
            table[name] = row
        return table

    table = benchmark.pedantic(run_comparison, rounds=1, iterations=1)

    methods = ["none", "jacobi", "ilu0", "spai", "neumann(8)", "mcmc"]
    rows = [[name] + [table[name][m] for m in methods] for name in table]
    print()
    print(format_table(["matrix"] + methods, rows,
                       title="Ablation: GMRES iterations by preconditioner"))

    # On the ill-conditioned matrix the MCMC preconditioner must deliver a
    # clear win over the unpreconditioned solve (the paper's use case).
    hard = table["unsteady_adv_diff_order2_0001"]
    assert hard["mcmc"] < hard["none"]
    # On the well-conditioned Laplacian (kappa ~ 1e2, GMRES already converges
    # in ~sqrt(kappa) steps) no sparse approximate inverse buys much; the MCMC
    # preconditioner only has to stay competitive.
    easy = table["2DFDLaplace_16"]
    assert easy["mcmc"] <= int(1.3 * easy["none"]) + 1
