"""Micro-benchmark: cold vs warm paths of the tuning-service subsystem.

Two scenarios, both asserting correctness alongside the timing gate:

* **Shared transition tables** — two :class:`MatrixEvaluator`\\ s over the
  same matrix share one :class:`~repro.mcmc.walks.TransitionTable` build via
  the :class:`~repro.service.cache.ArtifactCache`; the second evaluator's
  lookup must be a counted cache *hit* and far cheaper than the build.
* **Durable observations** — re-requesting a measurement already persisted in
  an :class:`~repro.service.store.ObservationStore` must serve the stored
  record (identical values) without touching the solver, far cheaper than
  measuring.

Run directly (``PYTHONPATH=src python benchmarks/bench_service_cache.py``) or
through pytest.  When run directly the measured numbers are written as JSON
(for the CI artifact) to ``BENCH_SERVICE_CACHE_JSON`` (default
``bench_service_cache.json``).  ``SERVICE_CACHE_REQUIRED_SPEEDUP`` overrides
the warm-vs-cold gate (CI uses a lower bar to tolerate shared-runner noise).
"""

from __future__ import annotations

import json
import os
import tempfile
import time

from repro.core.evaluation import MatrixEvaluator, SolverSettings
from repro.mcmc.parameters import MCMCParameters
from repro.service.cache import ArtifactCache
from repro.service.store import ObservationStore
from repro.sparse.csr import random_sparse

#: Benchmark matrix: large enough that a TransitionTable build and a full
#: measurement dominate the cache/store lookups by orders of magnitude.
BENCH_N = 3_000
BENCH_DENSITY = 0.002
REQUIRED_SPEEDUP = float(os.environ.get("SERVICE_CACHE_REQUIRED_SPEEDUP", "5"))

_SETTINGS = SolverSettings(rtol=1e-8, maxiter=300)
_PARAMETERS = MCMCParameters(alpha=2.0, eps=1.0, delta=0.5)


def _bench_matrix():
    return random_sparse(BENCH_N, BENCH_DENSITY, seed=0, diag_boost=4.0)


def bench_shared_transition_table() -> dict:
    """Cold build in evaluator A vs warm cache hit in evaluator B."""
    matrix = _bench_matrix()
    cache = ArtifactCache(max_entries=8)
    first = MatrixEvaluator(matrix, "bench-a", settings=_SETTINGS,
                            seed=0, cache=cache)
    second = MatrixEvaluator(matrix, "bench-b", settings=_SETTINGS,
                             seed=1, cache=cache)

    start = time.perf_counter()
    table_cold = first._transition_table(_PARAMETERS.alpha)
    cold = time.perf_counter() - start

    start = time.perf_counter()
    table_warm = second._transition_table(_PARAMETERS.alpha)
    warm = time.perf_counter() - start

    assert table_warm is table_cold, "evaluators did not share the build"
    assert cache.stats.builds == 1, f"expected 1 build, got {cache.stats.builds}"
    assert cache.stats.hits >= 1, "warm lookup was not a counted cache hit"
    return {
        "n": BENCH_N,
        "cold_build_s": cold,
        "warm_hit_s": warm,
        "speedup": cold / max(warm, 1e-9),
        "cache_stats": cache.stats.as_dict(),
    }


def bench_store_replay() -> dict:
    """Cold measurement vs warm replay of the stored observation."""
    matrix = _bench_matrix()
    with tempfile.TemporaryDirectory() as tmp:
        store = ObservationStore(tmp)
        evaluator = MatrixEvaluator(matrix, "bench", settings=_SETTINGS,
                                    seed=0, cache=ArtifactCache(max_entries=8),
                                    store=store)
        start = time.perf_counter()
        measured = evaluator.evaluate(_PARAMETERS, n_replications=1)
        cold = time.perf_counter() - start

        start = time.perf_counter()
        replayed = evaluator.evaluate(_PARAMETERS, n_replications=1)
        warm = time.perf_counter() - start

        assert replayed.y_values == measured.y_values, \
            "stored replay diverged from the measurement"
        assert len(store) == 1
    return {
        "n": BENCH_N,
        "cold_measure_s": cold,
        "warm_replay_s": warm,
        "speedup": cold / max(warm, 1e-9),
    }


def test_transition_table_cache_hit():
    """Warm evaluator must hit the shared cache and beat the cold build."""
    result = bench_shared_transition_table()
    print(f"\nTransitionTable (n={result['n']}): "
          f"cold {result['cold_build_s'] * 1e3:.1f} ms, "
          f"warm {result['warm_hit_s'] * 1e3:.3f} ms "
          f"-> {result['speedup']:.0f}x")
    assert result["speedup"] >= REQUIRED_SPEEDUP, (
        f"warm cache hit only {result['speedup']:.1f}x faster "
        f"(required {REQUIRED_SPEEDUP}x)")


def test_store_replay_speedup():
    """Serving a stored observation must beat re-measuring it."""
    result = bench_store_replay()
    print(f"\nObservationStore (n={result['n']}): "
          f"measure {result['cold_measure_s'] * 1e3:.1f} ms, "
          f"replay {result['warm_replay_s'] * 1e3:.3f} ms "
          f"-> {result['speedup']:.0f}x")
    assert result["speedup"] >= REQUIRED_SPEEDUP, (
        f"store replay only {result['speedup']:.1f}x faster "
        f"(required {REQUIRED_SPEEDUP}x)")


def main() -> None:
    results = {
        "transition_table_cache": bench_shared_transition_table(),
        "observation_store": bench_store_replay(),
    }
    for name, metrics in results.items():
        print(f"{name}: {json.dumps(metrics, indent=2)}")
    out_path = os.environ.get("BENCH_SERVICE_CACHE_JSON",
                              "bench_service_cache.json")
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2)
    print(f"wrote {out_path}")
    for name, metrics in results.items():
        assert metrics["speedup"] >= REQUIRED_SPEEDUP, (
            f"{name}: {metrics['speedup']:.1f}x < required {REQUIRED_SPEEDUP}x")


if __name__ == "__main__":
    main()
