"""Benchmark / regeneration of Table 1 (the matrix study set).

Prints the paper-reference and measured dimension, symmetry, condition number
and fill factor for every matrix analogue.  The smoke profile skips the two
very large matrices (``a08192``, ``nonsym_r3_a11``); set ``REPRO_PROFILE=paper``
to include them (their condition numbers are then estimated via sparse LU).
"""

from __future__ import annotations

import pytest

from repro.experiments import format_table1, generate_table1, save_json, to_jsonable


def test_table1_generation(benchmark, experiment_profile, tmp_path):
    """Regenerate Table 1 and print the paper-vs-measured comparison."""
    if experiment_profile.name == "paper":
        kwargs = dict(max_exact_dimension=4096, max_dimension=None)
    else:
        kwargs = dict(max_exact_dimension=1024, max_dimension=1024)

    rows = benchmark.pedantic(generate_table1, kwargs=kwargs, rounds=1, iterations=1)

    print()
    print(format_table1(rows))
    save_json([to_jsonable(row) for row in rows], tmp_path / "table1.json")

    # Sanity: the measured analogues must preserve the paper's qualitative facts.
    by_name = {row.name: row for row in rows}
    assert by_name["2DFDLaplace_16"].symmetric_measured
    assert not by_name["unsteady_adv_diff_order2_0001"].symmetric_measured
    assert (by_name["unsteady_adv_diff_order2_0001"].kappa_measured
            > by_name["unsteady_adv_diff_order1_0001"].kappa_measured)
    # O(h^-2) growth of the Laplacian condition number across resolutions
    # (the _32 entry is present in both profiles; _64/_128 only in "paper").
    assert (by_name["2DFDLaplace_32"].kappa_measured
            > by_name["2DFDLaplace_16"].kappa_measured)
