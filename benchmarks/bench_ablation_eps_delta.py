"""Ablation: the eps--delta asymmetry (Sec. 4.4 discussion).

The paper observes that, contrary to the prior assumption of symmetric roles,
a successful preconditioner requires ``eps ⪅ delta`` (more chains, shorter
walks) and that pushing both far below the optimum brings no further
improvement.  This benchmark sweeps the (eps, delta) grid at a fixed large
``alpha`` on the unseen test matrix and prints the measured metric map.
"""

from __future__ import annotations

import numpy as np

from repro.core.evaluation import MatrixEvaluator, SolverSettings
from repro.experiments.reporting import format_table
from repro.matrices import unsteady_advection_diffusion
from repro.mcmc import MCMCParameters


def test_eps_delta_asymmetry(benchmark, experiment_profile):
    """Sweep y(A, x_M) over the (eps, delta) grid at alpha = 4."""
    matrix = unsteady_advection_diffusion(15, order=2)
    evaluator = MatrixEvaluator(matrix, "unsteady_adv_diff_order2_0001",
                                settings=SolverSettings(maxiter=600), seed=0)
    if experiment_profile.name == "paper":
        epss = deltas = (0.5, 0.25, 0.125, 0.0625)
        replications = 5
    else:
        epss = deltas = (0.5, 0.25, 0.125)
        replications = 2

    def sweep():
        grid = {}
        for eps in epss:
            for delta in deltas:
                record = evaluator.evaluate(
                    MCMCParameters(alpha=4.0, eps=eps, delta=delta),
                    n_replications=replications)
                grid[(eps, delta)] = record.y_mean
        return grid

    grid = benchmark.pedantic(sweep, rounds=1, iterations=1)

    headers = ["eps \\ delta"] + [f"{d:g}" for d in deltas]
    rows = [[f"{eps:g}"] + [grid[(eps, delta)] for delta in deltas] for eps in epss]
    print()
    print(format_table(headers, rows,
                       title="Ablation: mean y(A, x_M) at alpha=4 over (eps, delta)"))

    # eps <= delta half must on average be at least as good as eps > delta.
    lower = [grid[(e, d)] for e in epss for d in deltas if e <= d]
    upper = [grid[(e, d)] for e in epss for d in deltas if e > d]
    assert np.mean(lower) <= np.mean(upper) + 0.05
    # Every cell at alpha=4 must show a real preconditioning benefit.
    assert max(grid.values()) < 1.0
