"""Micro-benchmark: operation-tape autodiff vs the seed closure engine.

Runs the seeded GNN-surrogate training step (forward + backward of
:func:`repro.nn.closure_reference.surrogate_loss_tensor`) under both the tape
engine (:mod:`repro.nn.autograd` via :mod:`repro.nn.functional`) and the seed
closure implementation preserved verbatim in
:mod:`repro.nn.closure_reference`, and checks that

* the tape engine's wall time stays within ``MAX_OVERHEAD``x of the closure
  baseline it replaced (the tape must be overhead-free in practice), and
* the tape backward allocates *fewer* gradient buffers than the closure
  engine -- the in-place accumulation of the graph engine is an allocation
  non-regression gate, not merely a timing one -- while the gradients remain
  bit-identical.

Run directly (``PYTHONPATH=src python benchmarks/bench_autograd.py``) or
through pytest.  ``AUTOGRAD_MAX_OVERHEAD`` overrides the timing gate (CI uses
a looser bar to tolerate shared-runner noise).  When run directly with
``AUTOGRAD_JSON`` set, the measured numbers are additionally written there as
JSON (CI artifact).
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.nn import autograd
from repro.nn import closure_reference as C
from repro.nn import functional as F
from repro.nn.tensor import Tensor

#: Larger than the test-suite problem so timings dominate interpreter noise.
BENCH_SEED = 0
BENCH_GRAPHS = 4
BENCH_NODES_PER_GRAPH = 40
BENCH_SAMPLES = 64
BENCH_ROUNDS = 20

#: Allowed wall-time ratio tape / closure on the training step.
MAX_OVERHEAD = float(os.environ.get("AUTOGRAD_MAX_OVERHEAD", "1.3"))


def _problem():
    return C.seeded_surrogate_problem(BENCH_SEED, num_graphs=BENCH_GRAPHS,
                                      nodes_per_graph=BENCH_NODES_PER_GRAPH,
                                      samples=BENCH_SAMPLES)


def _tape_step(problem, arrays):
    params = {k: Tensor(v, requires_grad=True) for k, v in arrays.items()}
    loss = C.surrogate_loss_tensor(F, params, problem)
    loss.backward()
    return params


def _closure_step(problem, arrays):
    params = {k: C.ClosureTensor(v, requires_grad=True)
              for k, v in arrays.items()}
    loss = C.surrogate_loss_tensor(C, params, problem)
    loss.backward()
    return params


def _best_time(fn, rounds: int = BENCH_ROUNDS) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def bench_training_step() -> dict:
    """Timings + equivalence + allocation counts on the surrogate step."""
    problem = _problem()
    arrays = C.init_surrogate_parameters(BENCH_SEED)

    tape_time = _best_time(lambda: _tape_step(problem, arrays))
    closure_time = _best_time(lambda: _closure_step(problem, arrays))
    overhead = tape_time / closure_time

    # Gradient equivalence: the tape engine must be a pure refactor.
    tape_params = _tape_step(problem, arrays)
    closure_params = _closure_step(problem, arrays)
    for name in arrays:
        np.testing.assert_array_equal(tape_params[name].grad,
                                      closure_params[name].grad,
                                      err_msg=name)

    # Allocation counts of one backward pass under each engine.
    autograd.reset_backward_stats()
    C.reset_allocation_counter()
    _tape_step(problem, arrays)
    _closure_step(problem, arrays)
    stats = autograd.backward_stats()
    tape_allocations = stats["buffer_allocations"]
    closure_allocations = C.allocation_counter()

    print(f"\nsurrogate training step ({BENCH_GRAPHS} graphs x "
          f"{BENCH_NODES_PER_GRAPH} nodes, {BENCH_SAMPLES} samples): "
          f"closure {closure_time * 1e3:.1f} ms, tape {tape_time * 1e3:.1f} ms "
          f"-> {overhead:.2f}x overhead; gradient-buffer allocations "
          f"{closure_allocations} -> {tape_allocations} "
          f"({stats['inplace_accumulations']} in-place, "
          f"{stats['leaf_donations']} donated)")
    return {
        "graphs": BENCH_GRAPHS,
        "nodes_per_graph": BENCH_NODES_PER_GRAPH,
        "samples": BENCH_SAMPLES,
        "closure_s": closure_time,
        "tape_s": tape_time,
        "overhead": overhead,
        "closure_allocations": int(closure_allocations),
        "tape_allocations": int(tape_allocations),
        "inplace_accumulations": int(stats["inplace_accumulations"]),
        "leaf_donations": int(stats["leaf_donations"]),
    }


def test_tape_overhead_within_bound():
    """Tape engine must stay within MAX_OVERHEAD x of the closure baseline."""
    metrics = bench_training_step()
    assert metrics["overhead"] <= MAX_OVERHEAD, (
        f"tape engine {metrics['overhead']:.2f}x slower than the closure "
        f"baseline (allowed {MAX_OVERHEAD}x)")
    # In-place accumulation: the tape backward must allocate strictly fewer
    # gradient buffers than the per-contribution allocations of the closures.
    assert metrics["tape_allocations"] < metrics["closure_allocations"], (
        f"tape backward allocated {metrics['tape_allocations']} buffers, "
        f"closure baseline {metrics['closure_allocations']}")


if __name__ == "__main__":
    results = {"training_step": bench_training_step()}
    json_path = os.environ.get("AUTOGRAD_JSON")
    if json_path:
        with open(json_path, "w", encoding="utf-8") as handle:
            json.dump(results, handle, indent=2)
        print(f"wrote {json_path}")
    metrics = results["training_step"]
    assert metrics["overhead"] <= MAX_OVERHEAD, (
        f"tape overhead {metrics['overhead']:.2f}x > allowed {MAX_OVERHEAD}x")
    assert metrics["tape_allocations"] < metrics["closure_allocations"]
