"""Benchmark / regeneration of Figure 2 (CI-inclusion heatmaps over (eps, delta)).

Prints, for every ``alpha`` of the reference grid and for both models, the map
of whether the predicted mean lies inside the empirical 99 % confidence
interval, plus the eps/delta asymmetry statistic discussed in the paper.
"""

from __future__ import annotations

from repro.experiments import format_figure2, run_figure2


def test_figure2_ci_inclusion(benchmark, pipeline_result):
    """Regenerate the confidence-interval inclusion analysis."""
    figure = benchmark.pedantic(run_figure2, kwargs={"result": pipeline_result},
                                rounds=1, iterations=1)
    print()
    print(format_figure2(figure))

    benchmark.extra_info["inclusion_pre_bo"] = figure.inclusion_rate("pre_bo")
    benchmark.extra_info["inclusion_bo_enhanced"] = figure.inclusion_rate("bo_enhanced")

    # Shape of the paper's finding: retraining on the BO measurements must not
    # reduce the overall inclusion rate of the predicted means.
    assert (figure.inclusion_rate("bo_enhanced")
            >= figure.inclusion_rate("pre_bo") - 0.05)
    # The inclusion maps cover the full (eps, delta) grid for every alpha.
    for alpha in figure.alphas:
        assert figure.inclusion["pre_bo"][alpha].shape == (
            len(figure.epss), len(figure.deltas))
