"""Observability overhead benchmark: traced vs untraced serving.

Two scenarios, each asserting bit-identity alongside its measurement:

* **Server tracing overhead** — the same warm request stream through a
  :class:`~repro.server.server.SolveServer` with the default
  :data:`~repro.obs.trace.NULL_TRACER` versus one carrying a live
  :class:`~repro.obs.trace.Tracer`.  Solutions must be bit-identical (the
  tentpole invariant: observability never participates in arithmetic); the
  reported overhead is the per-request cost of span bookkeeping plus the
  Krylov phase timers.
* **Phase-timer micro cost** — a bare CG solve inside and outside
  :func:`~repro.obs.phases.record_phases`, isolating the solver-side timer
  cost from the serving-layer spans.

Run directly (``PYTHONPATH=src python benchmarks/bench_obs.py``) or through
pytest.  When run directly the measured numbers are written as JSON to
``BENCH_OBS_JSON`` (default ``bench_obs.json``).
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.api import SolveRequestV1 as SolveRequest
from repro.krylov.cg import cg
from repro.matrices import laplacian_2d
from repro.obs.phases import record_phases
from repro.obs.trace import Tracer
from repro.server import SolveServer
from repro.service.cache import ArtifactCache
from repro.sparse.csr import random_sparse

BENCH_N = 1_200
BENCH_DENSITY = 0.003


def _request(matrix, index: int) -> SolveRequest:
    rhs = np.random.default_rng(index).standard_normal(matrix.shape[0])
    return SolveRequest(matrix=matrix, rhs=rhs, maxiter=400, tag=f"req{index}")


def bench_tracing_overhead(requests: int = 8) -> dict:
    """Warm request stream: NULL_TRACER server vs live-Tracer server.

    Both servers see the identical stream against a warm cache, so the
    difference isolates span bookkeeping + phase timers from solve cost.
    """
    matrix = random_sparse(BENCH_N, BENCH_DENSITY, seed=7, diag_boost=4.0)
    stream = [_request(matrix, index) for index in range(requests)]

    timings = {}
    solutions = {}
    for mode, tracer in (("untraced", None), ("traced", Tracer())):
        kwargs = {} if tracer is None else {"tracer": tracer}
        with SolveServer(cache=ArtifactCache(max_entries=16),
                         background=False, **kwargs) as server:
            server.solve(stream[0])  # warm the cache: measure serving
            start = time.perf_counter()
            responses = [server.solve(request) for request in stream]
            timings[mode] = time.perf_counter() - start
            assert all(response.converged for response in responses)
            solutions[mode] = [response.solution for response in responses]
        if tracer is not None:
            spans = tracer.spans()
            assert spans, "traced server recorded no spans"
            phase_spans = [span for span in spans if span.name == "solve"
                           and any(key.startswith("phase.")
                                   for key in span.attributes)]
            assert phase_spans, "no solve span carried phase timings"
            tracer.close()

    for ours, theirs in zip(solutions["traced"], solutions["untraced"]):
        assert np.array_equal(ours, theirs), \
            "tracing changed the arithmetic"
    return {
        "requests": requests,
        "untraced_ms_per_request": timings["untraced"] / requests * 1e3,
        "traced_ms_per_request": timings["traced"] / requests * 1e3,
        "tracing_overhead_ms_per_request":
            (timings["traced"] - timings["untraced"]) / requests * 1e3,
        "tracing_overhead_factor":
            timings["traced"] / max(timings["untraced"], 1e-9),
    }


def bench_phase_timer_cost(repeats: int = 5) -> dict:
    """Bare CG with and without an ambient phase recorder."""
    matrix = laplacian_2d(32)
    rhs = np.random.default_rng(3).standard_normal(matrix.shape[0])

    start = time.perf_counter()
    for _ in range(repeats):
        plain = cg(matrix, rhs, rtol=1e-8, maxiter=2000)
    plain_elapsed = time.perf_counter() - start

    start = time.perf_counter()
    for _ in range(repeats):
        with record_phases() as recorder:
            timed = cg(matrix, rhs, rtol=1e-8, maxiter=2000)
    timed_elapsed = time.perf_counter() - start

    assert np.array_equal(plain.solution, timed.solution), \
        "phase timers changed the arithmetic"
    assert timed.phase_timings is not None and recorder.seconds, \
        "recorder active but no phase timings captured"
    assert plain.phase_timings is None, \
        "phase timings recorded without an ambient recorder"
    return {
        "repeats": repeats,
        "iterations": int(plain.iterations),
        "plain_ms_per_solve": plain_elapsed / repeats * 1e3,
        "timed_ms_per_solve": timed_elapsed / repeats * 1e3,
        "timer_overhead_factor": timed_elapsed / max(plain_elapsed, 1e-9),
        "phases": sorted(recorder.seconds),
    }


def test_tracing_is_bit_neutral_and_bounded():
    """Traced serving returns identical bits (asserted inside the bench)."""
    result = bench_tracing_overhead(requests=3)
    print(f"\ntracing: untraced {result['untraced_ms_per_request']:.2f} "
          f"ms/req, traced {result['traced_ms_per_request']:.2f} ms/req "
          f"({result['tracing_overhead_factor']:.2f}x)")
    assert result["untraced_ms_per_request"] > 0
    assert result["traced_ms_per_request"] > 0


def test_phase_timers_are_bit_neutral():
    """Phase-timed CG returns identical bits (asserted inside the bench)."""
    result = bench_phase_timer_cost(repeats=2)
    print(f"\nphase timers: plain {result['plain_ms_per_solve']:.2f} "
          f"ms/solve, timed {result['timed_ms_per_solve']:.2f} ms/solve "
          f"({result['timer_overhead_factor']:.2f}x)")
    assert result["phases"]


def main() -> None:
    results = {
        "tracing_overhead": bench_tracing_overhead(),
        "phase_timer_cost": bench_phase_timer_cost(),
    }
    for name, metrics in results.items():
        print(f"{name}: {json.dumps(metrics, indent=2)}")
    out_path = os.environ.get("BENCH_OBS_JSON", "bench_obs.json")
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2)
    print(f"wrote {out_path}")


if __name__ == "__main__":
    main()
