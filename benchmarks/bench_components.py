"""Performance micro-benchmarks of the individual pipeline components.

These are classic pytest-benchmark timings (many rounds) of the operations the
framework spends its time in: building an MCMC preconditioner, running the
Krylov solvers with and without it, one surrogate training step, and one
acquisition proposal.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.optimize import AcquisitionOptimizer
from repro.core.surrogate import GraphNeuralSurrogate, SurrogateConfig
from repro.core.training import Trainer, TrainingConfig
from repro.krylov import solve
from repro.matrices import laplacian_2d, unsteady_advection_diffusion
from repro.mcmc import MCMCParameters, MCMCPreconditioner, estimate_inverse


@pytest.fixture(scope="module")
def laplace():
    return laplacian_2d(16)


@pytest.fixture(scope="module")
def adv_diff():
    return unsteady_advection_diffusion(15, order=2)


@pytest.fixture(scope="module")
def good_parameters():
    return MCMCParameters(alpha=4.0, eps=0.25, delta=0.25)


def test_mcmc_preconditioner_build(benchmark, adv_diff, good_parameters):
    """Cost of one MCMC matrix-inversion preconditioner build (225-dim matrix)."""
    result = benchmark(lambda: estimate_inverse(adv_diff, good_parameters, seed=0))
    assert result.nnz > 0


def test_mcmc_build_many_chains(benchmark, laplace):
    """Preconditioner build with the smallest paper eps (most chains per row)."""
    params = MCMCParameters(alpha=1.0, eps=0.0625, delta=0.125)
    result = benchmark(lambda: estimate_inverse(laplace, params, seed=0))
    assert result.nnz > 0


def test_gmres_unpreconditioned(benchmark, adv_diff):
    """Unpreconditioned GMRES on the ill-conditioned test matrix."""
    rhs = np.ones(adv_diff.shape[0])
    result = benchmark(lambda: solve(adv_diff, rhs, solver="gmres", maxiter=600,
                                     restart=adv_diff.shape[0]))
    assert result.iterations > 0


def test_gmres_with_mcmc_preconditioner(benchmark, adv_diff, good_parameters):
    """Preconditioned GMRES (preconditioner built once, outside the timer)."""
    preconditioner = MCMCPreconditioner(adv_diff, good_parameters, seed=0)
    rhs = np.ones(adv_diff.shape[0])
    result = benchmark(lambda: solve(adv_diff, rhs, solver="gmres", maxiter=600,
                                     restart=adv_diff.shape[0],
                                     preconditioner=preconditioner))
    assert result.converged


def test_surrogate_training_epoch(benchmark, tiny_training_setup):
    """One Adam epoch of the surrogate on the benchmark dataset."""
    dataset, model = tiny_training_setup
    trainer = Trainer(TrainingConfig(epochs=1, batch_size=64, learning_rate=1e-3,
                                     patience=10, min_epochs=1, seed=0))
    train_idx, val_idx = dataset.split(0.2, seed=0)

    def one_epoch():
        return trainer.fit(model, dataset, train_indices=train_idx,
                           validation_indices=val_idx)

    history = benchmark.pedantic(one_epoch, rounds=3, iterations=1)
    assert history.epochs_run == 1


def test_acquisition_proposal(benchmark, tiny_training_setup, adv_diff):
    """One EI maximisation (L-BFGS-B with restarts) on the unseen test matrix."""
    dataset, model = tiny_training_setup
    optimizer = AcquisitionOptimizer(model, dataset, n_restarts=2, seed=0)

    def propose():
        return optimizer.propose(adv_diff, "unseen_test", n_candidates=4, xi=0.05)

    candidates = benchmark.pedantic(propose, rounds=3, iterations=1)
    assert len(candidates) == 4


@pytest.fixture(scope="module")
def tiny_training_setup(pipeline_result):
    """Reuse the pipeline's dataset with a small fresh surrogate for timing."""
    dataset = pipeline_result.dataset
    config = SurrogateConfig(
        node_dim=dataset.node_feature_dim, edge_dim=dataset.edge_feature_dim,
        xa_dim=dataset.xa_dim, xm_dim=dataset.xm_dim,
        graph_hidden=16, xa_hidden=8, xm_hidden=8, combined_hidden=16,
        dropout=0.0, seed=0)
    model = GraphNeuralSurrogate(config)
    return dataset, model
