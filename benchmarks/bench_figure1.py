"""Benchmark / regeneration of Figure 1 (calibration curves, Wilson bands).

Uses the shared pipeline run; the benchmarked quantity is the calibration
analysis itself (the expensive solver/training work is shared across the
figure benchmarks through the session-scoped pipeline fixture).
"""

from __future__ import annotations

import numpy as np

from repro.experiments import format_figure1, run_figure1


def test_figure1_calibration(benchmark, pipeline_result):
    """Regenerate the calibration curves of the Pre-BO and BO-enhanced models."""
    figure = benchmark.pedantic(run_figure1, kwargs={"result": pipeline_result},
                                rounds=1, iterations=1)
    print()
    print(format_figure1(figure))

    pre = figure.overall["pre_bo"]
    post = figure.overall["bo_enhanced"]
    benchmark.extra_info["miscalibration_pre_bo"] = pre.mean_absolute_miscalibration()
    benchmark.extra_info["miscalibration_bo_enhanced"] = \
        post.mean_absolute_miscalibration()

    # Structural checks: both curves are proper calibration curves over the
    # full reference data with monotone coverage and valid Wilson bands.  The
    # paper's directional finding (the BO-enhanced model is better calibrated)
    # is recorded in extra_info / EXPERIMENTS.md; at smoke scale (3 replicates,
    # tiny surrogate) the direction is noisy, so it is reported, not asserted.
    assert figure.n_observations > 0
    for curve in (pre, post):
        assert float(np.min(curve.observed_coverage)) >= 0.0
        assert float(np.max(curve.observed_coverage)) <= 1.0
        assert np.all(np.diff(curve.observed_coverage) >= -1e-12)
        assert np.all(curve.wilson_lower <= curve.wilson_upper)
