"""A/B benchmark: rule-table policy vs the online-trained surrogate policy.

The scenario the online learning loop exists for: a *family* of matrices the
rule table can only treat generically.  Each member is a 2-D FD Laplacian
plus a strong skew-symmetric convection coupling — the skew part inflates the
off-diagonal row mass until the dominance heuristic drops below the fragile
threshold, so the cold-start rule prescribes MCMC preconditioning with the
paper's default parameters.  The symmetric part stays positive definite, so
every member is perfectly solvable; the *parameters* are what matters:
the rule default ``(alpha=2, eps=delta=0.25)`` costs ~50-70 GMRES
iterations per member while the family's sweet spot ``eps=delta=0.0625``
costs ~40, with a divergence cliff at low ``alpha`` / high ``eps``.

Arm A ("rule") decides with a bare :class:`PreconditionerPolicy` — no store,
no surrogate: the paper-default MCMC parameters.  Arm B ("surrogate") trains
a surrogate generation with the real :class:`SurrogateTrainer` on grid
measurements of *training* members, then decides through the same policy
ladder with the surrogate stage attached.  Both arms are evaluated on family
members the store has never seen; the gate asserts the surrogate's mean
iteration count beats the rule default by ``LEARN_REQUIRED_WIN`` iterations.

Run directly (``PYTHONPATH=src python benchmarks/bench_learn.py``) or through
pytest.  When run directly with ``LEARN_JSON`` set, per-matrix iteration
counts and the margin are written there as JSON (CI artifact).
"""

from __future__ import annotations

import json
import os

import numpy as np
import scipy.sparse as sp

from repro.core.evaluation import PerformanceRecord
from repro.krylov.solve import solve
from repro.learn import (
    LearnConfig,
    MatrixBank,
    ModelRegistry,
    SurrogatePolicy,
    SurrogateTrainer,
)
from repro.matrices.features import feature_vector, structural_flags
from repro.mcmc.parameters import MCMCParameters
from repro.mcmc.preconditioner import MCMCPreconditioner
from repro.server.policy import (
    ORIGIN_RULE,
    ORIGIN_SURROGATE,
    PreconditionerPolicy,
)
from repro.service.store import ObservationStore
from repro.sparse.fingerprint import matrix_fingerprint

#: Mean-iteration win (rule minus surrogate) the gate demands on the unseen
#: evaluation members.  The landscape gives the surrogate ~15-20 iterations
#: of headroom; 5.0 keeps the gate robust to fit and transfer noise.
REQUIRED_WIN = float(os.environ.get("LEARN_REQUIRED_WIN", "5.0"))

RTOL = 1e-8
MAXITER = 3000

#: (grid, seed) members measured into the observation store.
TRAIN_MEMBERS = ((16, 0), (16, 1), (12, 2))
#: (grid, seed) members neither stored nor banked — truly unseen.
EVAL_MEMBERS = ((16, 7), (14, 5), (18, 6))

#: Measurement grid over the parameter space, straddling the divergence
#: cliff at low alpha/high eps so the surrogate learns to stay clear of it.
GRID_ALPHAS = (1.75, 2.0, 2.25, 2.5, 3.0, 3.5)
GRID_EPS_DELTA = ((0.0625, 0.0625), (0.125, 0.125), (0.25, 0.25), (0.5, 0.5))


def skew_laplacian(grid: int, seed: int, skew: float = 4.5) -> sp.csr_matrix:
    """One family member: 2-D Laplacian + skew-symmetric convection."""
    n = grid * grid
    rng = np.random.default_rng(seed)

    def node(i: int, j: int) -> int:
        return i * grid + j

    matrix = sp.lil_matrix((n, n))
    for i in range(grid):
        for j in range(grid):
            k = node(i, j)
            matrix[k, k] = 4.0 + 0.05 * rng.standard_normal()
            for di, dj in ((-1, 0), (1, 0), (0, -1), (0, 1)):
                ii, jj = i + di, j + dj
                if 0 <= ii < grid and 0 <= jj < grid:
                    matrix[k, node(ii, jj)] = -1.0
    for i in range(grid):
        for j in range(grid - 1):
            k, k2 = node(i, j), node(i, j + 1)
            coupling = skew * (1.0 + 0.05 * rng.random())
            matrix[k, k2] += coupling
            matrix[k2, k] -= coupling
    return matrix.tocsr()


def member_name(grid: int, seed: int) -> str:
    return f"skewlap_g{grid}_s{seed}"


def measure_iterations(matrix: sp.csr_matrix,
                       parameters: MCMCParameters) -> int:
    """GMRES iterations under an MCMC preconditioner (censored at MAXITER)."""
    rhs = np.ones(matrix.shape[0])
    try:
        preconditioner = MCMCPreconditioner(matrix, parameters, seed=0)
    except Exception:
        return MAXITER  # non-contractive walks: censored like a divergence
    result = solve(matrix, rhs, solver="gmres", preconditioner=preconditioner,
                   rtol=RTOL, maxiter=MAXITER)
    return int(result.iterations) if result.converged else MAXITER


def seed_family_store(store_dir: str, bank: MatrixBank) -> ObservationStore:
    """Measure the parameter grid on the training members into a store."""
    store = ObservationStore(store_dir)
    for grid, seed in TRAIN_MEMBERS:
        matrix = skew_laplacian(grid, seed)
        name = member_name(grid, seed)
        bank.put(name, matrix)
        fingerprint = matrix_fingerprint(matrix)
        store.register_matrix(fingerprint, name, feature_vector(matrix))
        baseline = solve(matrix, np.ones(matrix.shape[0]), solver="gmres",
                         rtol=RTOL, maxiter=MAXITER)
        baseline_iterations = max(int(baseline.iterations), 1)
        # Censor divergent grid points at 1.5x the unpreconditioned baseline:
        # "clearly worse than no preconditioner at all".  Storing the raw
        # MAXITER count instead (y ~ 38 vs the real 0.4-0.55 landscape) lets
        # a handful of censored rows dominate the MSE and wreck the fit.
        censor_cap = int(1.5 * baseline_iterations)
        for alpha in GRID_ALPHAS:
            for eps, delta in GRID_EPS_DELTA:
                parameters = MCMCParameters(alpha=alpha, eps=eps, delta=delta)
                iterations = min(measure_iterations(matrix, parameters),
                                 censor_cap)
                store.put_record(fingerprint, PerformanceRecord(
                    parameters=parameters, matrix_name=name,
                    baseline_iterations=baseline_iterations,
                    preconditioned_iterations=[iterations],
                    y_values=[iterations / baseline_iterations]),
                    context="bench_learn")
    return store


def decide_and_measure(policy: PreconditionerPolicy,
                       matrix: sp.csr_matrix) -> tuple[str, dict, int]:
    """One policy decision + its measured iteration count."""
    fingerprint = matrix_fingerprint(matrix)
    decision = policy.decide(matrix, fingerprint)
    assert decision.family == "mcmc", (
        f"expected an mcmc decision on the fragile family, "
        f"got {decision.family} ({decision.origin}/{decision.rule})")
    iterations = measure_iterations(matrix, decision.mcmc_parameters())
    return decision.origin, dict(decision.params), iterations


def bench_learn(tmp_root: str) -> dict:
    """Train arm B, evaluate both arms on the unseen members (no gate)."""
    bank = MatrixBank()
    store = seed_family_store(os.path.join(tmp_root, "store"), bank)
    registry = ModelRegistry(os.path.join(tmp_root, "models"))
    surrogate = SurrogatePolicy()
    # The alpha/eps interaction (low alpha is optimal *only* at low eps; the
    # divergence cliff sits at low alpha + high eps) needs a longer, gentler
    # fit than an incremental online generation: 60 epochs learns the main
    # effects but serves the interaction inverted.
    trainer = SurrogateTrainer(
        store, registry, bank=bank,
        config=LearnConfig(min_records=24, epochs=600, patience=600,
                           learning_rate=8e-4, interval_s=60.0),
        on_publish=lambda model, dataset, version, meta:
            surrogate.update(model, dataset, version, meta))
    version = trainer.train_generation()

    rule_policy = PreconditionerPolicy()  # arm A: cold rule table
    surrogate_policy = PreconditionerPolicy(store, surrogate=surrogate)

    per_matrix = []
    for grid, seed in EVAL_MEMBERS:
        matrix = skew_laplacian(grid, seed)
        flags = structural_flags(matrix)
        assert flags["dominance"] < 0.5, (
            f"family drifted out of the fragile regime "
            f"(dominance {flags['dominance']:.3f})")
        rule_origin, rule_params, rule_iters = \
            decide_and_measure(rule_policy, matrix)
        surr_origin, surr_params, surr_iters = \
            decide_and_measure(surrogate_policy, matrix)
        assert rule_origin == ORIGIN_RULE, rule_origin
        assert surr_origin == ORIGIN_SURROGATE, (
            f"surrogate stage did not fire on {member_name(grid, seed)} "
            f"(origin {surr_origin})")
        per_matrix.append({
            "matrix": member_name(grid, seed),
            "n": int(matrix.shape[0]),
            "dominance": float(flags["dominance"]),
            "rule_params": rule_params,
            "rule_iterations": rule_iters,
            "surrogate_params": surr_params,
            "surrogate_iterations": surr_iters,
        })
        print(f"{member_name(grid, seed)}: rule {rule_iters} iters "
              f"{rule_params} | surrogate {surr_iters} iters {surr_params}")

    rule_mean = float(np.mean([m["rule_iterations"] for m in per_matrix]))
    surrogate_mean = float(np.mean([m["surrogate_iterations"]
                                    for m in per_matrix]))
    margin = rule_mean - surrogate_mean
    print(f"\nmean iterations over {len(per_matrix)} unseen matrices: "
          f"rule {rule_mean:.1f}, surrogate {surrogate_mean:.1f} "
          f"-> margin {margin:+.1f} (model {version})")
    return {"model_version": version,
            "train_members": [member_name(g, s) for g, s in TRAIN_MEMBERS],
            "eval_members": [member_name(g, s) for g, s in EVAL_MEMBERS],
            "records": len(store),
            "rule_mean_iterations": rule_mean,
            "surrogate_mean_iterations": surrogate_mean,
            "margin": margin,
            "required_win": REQUIRED_WIN,
            "per_matrix": per_matrix}


def test_surrogate_beats_rule_table(tmp_path):
    """The trained surrogate must out-iterate the rule default on unseen
    family members by at least REQUIRED_WIN iterations on average."""
    results = bench_learn(str(tmp_path))
    assert results["margin"] >= REQUIRED_WIN, (
        f"surrogate won by only {results['margin']:+.1f} mean iterations "
        f"(required {REQUIRED_WIN}); rule {results['rule_mean_iterations']:.1f}"
        f" vs surrogate {results['surrogate_mean_iterations']:.1f}")


if __name__ == "__main__":
    import tempfile

    with tempfile.TemporaryDirectory() as tmp_root:
        results = bench_learn(tmp_root)
    json_path = os.environ.get("LEARN_JSON")
    if json_path:
        with open(json_path, "w", encoding="utf-8") as handle:
            json.dump(results, handle, indent=2)
        print(f"wrote {json_path}")
    assert results["margin"] >= REQUIRED_WIN, (
        f"surrogate won by only {results['margin']:+.1f} mean iterations "
        f"(required {REQUIRED_WIN})")
