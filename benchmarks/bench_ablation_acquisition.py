"""Ablation: acquisition exploration setting and surrogate architecture choice.

Two design choices called out in DESIGN.md are exercised here:

* the EI exploration parameter ``xi`` (balanced 0.05 vs exploration-heavy 1.0),
  compared by the measured quality of the recommended candidates;
* the message-passing layer type (EdgeConv -- the paper's HPO winner -- versus
  the weighted GCN layer), compared by surrogate validation loss at equal
  training budget.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.core.optimize import AcquisitionOptimizer
from repro.core.surrogate import GraphNeuralSurrogate
from repro.core.training import Trainer, TrainingConfig
from repro.experiments.reporting import format_table


def test_acquisition_xi_ablation(benchmark, pipeline_result):
    """Measured metric of the candidates proposed with xi = 0.05 vs xi = 1.0."""
    records = pipeline_result.bo_records

    def summarise():
        return {xi: {
            "best": float(np.min([r.y_median for r in recs])),
            "median": float(np.median([r.y_median for r in recs])),
        } for xi, recs in records.items()}

    summary = benchmark.pedantic(summarise, rounds=1, iterations=1)

    rows = [[f"xi={xi:g}", values["best"], values["median"]]
            for xi, values in sorted(summary.items())]
    print()
    print(format_table(["strategy", "best median y", "median of medians"], rows,
                       title="Ablation: EI exploration parameter"))
    # Both strategies must find at least one genuinely useful preconditioner.
    assert min(values["best"] for values in summary.values()) < 1.0


def test_surrogate_architecture_ablation(benchmark, pipeline_result):
    """Validation loss of EdgeConv vs GCN surrogates at equal budget."""
    dataset = pipeline_result.dataset
    base_config = replace(
        pipeline_result.profile.surrogate.with_dims(
            node_dim=dataset.node_feature_dim, edge_dim=dataset.edge_feature_dim,
            xa_dim=dataset.xa_dim, xm_dim=dataset.xm_dim),
        graph_hidden=16, combined_hidden=16, xa_hidden=8, xm_hidden=8, dropout=0.0)
    training = TrainingConfig(epochs=12, batch_size=64, learning_rate=5e-3,
                              patience=12, seed=0)
    train_idx, val_idx = dataset.split(0.2, seed=0)

    def run_ablation():
        losses = {}
        for conv_type in ("edge", "gcn"):
            model = GraphNeuralSurrogate(replace(base_config, conv_type=conv_type))
            history = Trainer(training).fit(model, dataset,
                                            train_indices=train_idx,
                                            validation_indices=val_idx)
            losses[conv_type] = history.best_validation_loss
        return losses

    losses = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    print()
    print(format_table(["conv type", "best validation loss"],
                       [[k, v] for k, v in losses.items()],
                       title="Ablation: message-passing layer type"))
    assert all(np.isfinite(v) for v in losses.values())
