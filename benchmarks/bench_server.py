"""Solve-server benchmark: throughput, latency, policy warm-up, batching.

Three scenarios, each asserting correctness alongside its timing gate:

* **Throughput / latency** — a queued stream of requests over a few registry
  matrices; reports requests/s and the p50/p95/p99 solve latency straight
  from the server's telemetry histograms.
* **Cold vs warm policy** — the first request for a matrix pays the policy
  decision plus the preconditioner build; repeating it must be served from
  the shared :class:`~repro.service.cache.ArtifactCache` far cheaper.
* **Shared-fingerprint batching** — K same-matrix requests served in one
  batched drain (one build) versus the same K requests each against a cold
  cache (K builds).
* **Transport overhead** — the same warm request stream through
  :class:`~repro.client.InProcessClient` versus
  :class:`~repro.client.HTTPClient` against a local
  :class:`~repro.server.http.SolveHTTPServer`; asserts bit-identical
  solutions and reports the HTTP/JSON round-trip overhead per request.
* **Block vs loop** — a ``k >= 8`` same-matrix batch served with
  ``batch_mode="block"`` (one shared Krylov subspace,
  :mod:`repro.krylov.block`) versus ``batch_mode="loop"``: wall clock and
  total matrix--vector products from the ``solve.matvecs_total``
  telemetry, asserting block mode needs strictly fewer matvecs while
  every column still meets the requested tolerance.  This scenario is
  additionally written to ``BENCH_BLOCK_JSON`` (default
  ``bench_block_vs_loop.json``) for its own CI artifact.
* **Fleet router** — 8 distinct matrices solved by 4 concurrent clients
  through a :class:`~repro.fleet.router.FleetRouter` fronting two
  replicas, versus the same stream against a single server: asserts the
  routed solutions are bit-identical, that consistent-hash sharding keeps
  the warm-phase artifact-cache hit rate at >= 90 % (every matrix sticks
  to the replica that built its preconditioner), and reports throughput
  plus client-observed p50/p95/p99 latency.  Written to
  ``BENCH_FLEET_JSON`` (default ``bench_fleet.json``) for its own CI
  artifact.

Run directly (``PYTHONPATH=src python benchmarks/bench_server.py``) or
through pytest.  When run directly the measured numbers are written as JSON
(for the CI artifact) to ``BENCH_SERVER_JSON`` (default
``bench_server.json``).  ``SERVER_REQUIRED_SPEEDUP`` overrides the warm-vs-
cold gate (CI uses a lower bar to tolerate shared-runner noise).
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.api import SolveRequestV1 as SolveRequest
from repro.client import HTTPClient, InProcessClient
from repro.server import SolveServer
from repro.server.http import SolveHTTPServer
from repro.service.cache import ArtifactCache
from repro.sparse.csr import random_sparse

REQUIRED_SPEEDUP = float(os.environ.get("SERVER_REQUIRED_SPEEDUP", "3"))

#: Large enough that a preconditioner build dominates queue overhead.
BENCH_N = 1_500
BENCH_DENSITY = 0.003

#: The cold-vs-warm and batching scenarios use a larger, strongly dominant
#: matrix: its Neumann-series build is expensive while its solves are a few
#: iterations, so the warm/batched paths isolate the build amortisation.
POLICY_N = 3_000
POLICY_DIAG_BOOST = 8.0


def _bench_matrix(seed: int = 0):
    return random_sparse(BENCH_N, BENCH_DENSITY, seed=seed, diag_boost=4.0)


def _policy_matrix(seed: int = 2):
    return random_sparse(POLICY_N, BENCH_DENSITY, seed=seed,
                         diag_boost=POLICY_DIAG_BOOST)


def _request(matrix, index: int, seed: int = 0) -> SolveRequest:
    rhs = np.random.default_rng(seed + index).standard_normal(matrix.shape[0])
    return SolveRequest(matrix=matrix, rhs=rhs, maxiter=400,
                        tag=f"req{index}")


def bench_throughput(requests: int = 12) -> dict:
    """Queued stream over two matrices; reports req/s and latency quantiles."""
    matrices = [_bench_matrix(0), _bench_matrix(1)]
    server = SolveServer(cache=ArtifactCache(max_entries=16), background=False)
    stream = [_request(matrices[index % len(matrices)], index)
              for index in range(requests)]
    start = time.perf_counter()
    jobs = server.submit_many(stream)
    assert server.drain(timeout=600.0)
    elapsed = time.perf_counter() - start
    responses = [job.result(timeout=1.0) for job in jobs]
    assert all(response.converged for response in responses)
    latency = server.telemetry.histogram("solve.latency_ms").summary()
    server.shutdown()
    return {
        "requests": requests,
        "wall_s": elapsed,
        "throughput_rps": requests / elapsed,
        "latency_ms_p50": latency["p50"],
        "latency_ms_p95": latency["p95"],
        "latency_ms_p99": latency["p99"],
    }


def bench_policy_cold_vs_warm() -> dict:
    """First (cold) request pays the build; the repeat must hit the cache."""
    matrix = _policy_matrix(2)
    cache = ArtifactCache(max_entries=16)
    server = SolveServer(cache=cache, background=False)

    start = time.perf_counter()
    cold_response = server.solve(_request(matrix, 0))
    cold = time.perf_counter() - start

    start = time.perf_counter()
    warm_response = server.solve(_request(matrix, 0))
    warm = time.perf_counter() - start

    assert cold_response.converged and warm_response.converged
    assert np.array_equal(cold_response.solution, warm_response.solution), \
        "warm serve diverged from the cold serve"
    assert cache.stats.builds == 1, \
        f"expected 1 preconditioner build, got {cache.stats.builds}"
    server.shutdown()
    return {
        "n": POLICY_N,
        "cold_s": cold,
        "warm_s": warm,
        "speedup": cold / max(warm, 1e-9),
    }


def bench_shared_fingerprint_batching(k: int = 4) -> dict:
    """K same-matrix requests: one batched drain vs K cold servers."""
    matrix = _policy_matrix(3)

    cold_total = 0.0
    for index in range(k):
        server = SolveServer(cache=ArtifactCache(max_entries=16),
                             background=False)
        start = time.perf_counter()
        response = server.solve(_request(matrix, index))
        cold_total += time.perf_counter() - start
        assert response.converged
        server.shutdown()

    cache = ArtifactCache(max_entries=16)
    server = SolveServer(cache=cache, background=False)
    start = time.perf_counter()
    jobs = server.submit_many([_request(matrix, index) for index in range(k)])
    assert server.drain(timeout=600.0)
    batched_total = time.perf_counter() - start
    responses = [job.result(timeout=1.0) for job in jobs]
    assert all(response.batch_size == k for response in responses), \
        "requests were not batched into one group"
    assert cache.stats.builds == 1, \
        f"expected 1 shared build, got {cache.stats.builds}"
    server.shutdown()
    return {
        "k": k,
        "cold_total_s": cold_total,
        "batched_total_s": batched_total,
        "speedup": cold_total / max(batched_total, 1e-9),
    }


def bench_transport_overhead(requests: int = 8) -> dict:
    """Warm same-request stream: in-process vs HTTP/JSON round trips.

    Both transports serve the identical stream against a warm cache, so the
    difference isolates the wire cost (JSON + base64 codec + loopback HTTP).
    Solutions must be bit-identical — transport is never a numerical choice.
    """
    matrix = _bench_matrix(4)
    stream = [_request(matrix, index) for index in range(requests)]

    # wire_fidelity=False: the baseline must not pay the codec, or the
    # reported overhead would understate the true wire cost.
    with InProcessClient(cache=ArtifactCache(max_entries=16),
                         background=False, wire_fidelity=False) as client:
        client.solve(stream[0])  # warm the cache: measure serving, not builds
        start = time.perf_counter()
        local = [client.solve(request) for request in stream]
        local_elapsed = time.perf_counter() - start

    with SolveHTTPServer(port=0, cache=ArtifactCache(max_entries=16),
                         background=False) as http_server:
        client = HTTPClient(http_server.url)
        client.solve(stream[0])
        start = time.perf_counter()
        remote = [client.solve(request) for request in stream]
        remote_elapsed = time.perf_counter() - start

    for ours, theirs in zip(local, remote):
        assert ours.iterations == theirs.iterations
        assert np.array_equal(ours.solution, theirs.solution), \
            "HTTP transport changed the arithmetic"
    return {
        "requests": requests,
        "in_process_ms_per_request": local_elapsed / requests * 1e3,
        "http_ms_per_request": remote_elapsed / requests * 1e3,
        "http_overhead_ms_per_request":
            (remote_elapsed - local_elapsed) / requests * 1e3,
        "http_overhead_factor": remote_elapsed / max(local_elapsed, 1e-9),
    }


def bench_block_vs_loop(k: int = 8) -> dict:
    """Same-matrix batch of ``k`` rhs: block-Krylov vs per-column serving.

    Uses unpreconditioned CG on a 2-D Laplacian so the matvec count is the
    dominant cost and the comparison is clean; residuals of *both* modes
    are checked against the requested rtol, honestly recomputed from the
    returned solutions.
    """
    from repro.matrices import laplacian_2d

    matrix = laplacian_2d(32)
    n = matrix.shape[0]
    rtol = 1e-8
    rhs_columns = [np.random.default_rng(100 + index).standard_normal(n)
                   for index in range(k)]

    measurements = {}
    solutions = {}
    for mode in ("loop", "block"):
        server = SolveServer(cache=ArtifactCache(max_entries=16),
                             background=False, batch_mode=mode)
        requests = [SolveRequest(matrix=matrix, rhs=rhs, solver="cg",
                                 preconditioner="none", rtol=rtol,
                                 tag=f"{mode}{index}")
                    for index, rhs in enumerate(rhs_columns)]
        start = time.perf_counter()
        jobs = server.submit_many(requests)
        assert server.drain(timeout=600.0)
        elapsed = time.perf_counter() - start
        responses = [job.result(timeout=1.0) for job in jobs]
        assert all(response.converged for response in responses)
        assert all(response.batch_mode == mode for response in responses), \
            f"{mode} serving did not report {mode} provenance"
        for response, rhs in zip(responses, rhs_columns):
            residual = np.linalg.norm(matrix @ response.solution - rhs)
            assert residual <= 10 * rtol * np.linalg.norm(rhs), \
                f"{mode} column missed the requested tolerance"
        measurements[mode] = {
            "wall_s": elapsed,
            "matvecs": int(server.telemetry.counter(
                "solve.matvecs_total").value),
            "iterations": [int(response.iterations)
                           for response in responses],
        }
        solutions[mode] = [response.solution for response in responses]
        server.shutdown()

    for ours, theirs in zip(solutions["block"], solutions["loop"]):
        scale = max(float(np.linalg.norm(theirs)), 1.0)
        assert np.linalg.norm(ours - theirs) <= 1e-5 * scale, \
            "block and loop solutions diverged beyond tolerance"

    loop_matvecs = measurements["loop"]["matvecs"]
    block_matvecs = measurements["block"]["matvecs"]
    return {
        "k": k,
        "n": n,
        "solver": "cg",
        "rtol": rtol,
        "loop_matvecs": loop_matvecs,
        "block_matvecs": block_matvecs,
        "matvec_ratio": block_matvecs / max(loop_matvecs, 1),
        "loop_wall_s": measurements["loop"]["wall_s"],
        "block_wall_s": measurements["block"]["wall_s"],
        "loop_iterations": measurements["loop"]["iterations"],
        "block_iterations": measurements["block"]["iterations"],
    }


def bench_fleet_router(matrices_count: int = 8, clients: int = 4) -> dict:
    """8 matrices x 4 concurrent clients: router-with-2-replicas vs single.

    A warm-up pass builds every preconditioner once; the measured phase
    then streams ``clients`` threads each solving every matrix with its own
    right-hand side.  Because the router shards by matrix fingerprint, each
    warm request lands on the replica whose cache holds its preconditioner
    — the measured cache hit rate (delta over the warm phase, aggregated
    across replicas from the router's ``/v1/metrics``) must stay >= 90 %.
    The identical stream against one server gives the baseline numbers and
    the bit-identity reference.
    """
    import threading

    from repro.fleet import FleetRouter, InProcessReplica, ReplicaFleet

    matrices = [random_sparse(600, 0.005, seed=20 + index, diag_boost=4.0)
                for index in range(matrices_count)]

    def stream_for(client_index: int) -> list[SolveRequest]:
        return [SolveRequest(
            matrix=matrix,
            rhs=np.random.default_rng(1000 * client_index + index)
                .standard_normal(matrix.shape[0]),
            maxiter=400, tag=f"c{client_index}.m{index}")
            for index, matrix in enumerate(matrices)]

    def run_clients(url: str) -> tuple[list, list[float], float]:
        responses: list = [None] * (clients * matrices_count)
        latencies: list[float] = [0.0] * (clients * matrices_count)

        def one_client(client_index: int) -> None:
            client = HTTPClient(url, timeout=300.0)
            for index, request in enumerate(stream_for(client_index)):
                slot = client_index * matrices_count + index
                start = time.perf_counter()
                responses[slot] = client.solve(request)
                latencies[slot] = (time.perf_counter() - start) * 1e3

        workers = [threading.Thread(target=one_client, args=(c,))
                   for c in range(clients)]
        start = time.perf_counter()
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        return responses, latencies, time.perf_counter() - start

    def warm(url: str) -> None:
        client = HTTPClient(url, timeout=300.0)
        for index, matrix in enumerate(matrices):
            client.solve(SolveRequest(matrix=matrix,
                                      rhs=np.ones(matrix.shape[0]),
                                      maxiter=400, tag=f"warm{index}"))

    def cache_totals(snapshot) -> tuple[int, int]:
        hits = sum(stats.get("hits", 0)
                   for stats in snapshot.artifact_cache.values())
        misses = sum(stats.get("misses", 0)
                     for stats in snapshot.artifact_cache.values())
        return hits, misses

    # -- single server baseline ----------------------------------------------
    with SolveHTTPServer(port=0, cache=ArtifactCache(max_entries=32)) \
            as single:
        warm(single.url)
        single_responses, single_latencies, single_wall = \
            run_clients(single.url)

    # -- fleet: 2 replicas behind the router ---------------------------------
    fleet = ReplicaFleet([InProcessReplica(f"replica-{i}") for i in range(2)],
                         health_interval=30.0)
    fleet.start()
    router = FleetRouter(fleet).start()
    try:
        metrics_client = HTTPClient(router.url)
        warm(router.url)
        warm_hits, warm_misses = cache_totals(metrics_client.metrics())
        fleet_responses, fleet_latencies, fleet_wall = \
            run_clients(router.url)
        snapshot = metrics_client.metrics()
        total_hits, total_misses = cache_totals(snapshot)
    finally:
        router.shutdown()
        fleet.drain()

    total = clients * matrices_count
    assert all(response is not None and response.converged
               for response in fleet_responses)
    for ours, theirs in zip(fleet_responses, single_responses):
        assert np.array_equal(ours.solution, theirs.solution), \
            "routed serving changed the arithmetic"

    measured_hits = total_hits - warm_hits
    measured_misses = total_misses - warm_misses
    hit_rate = measured_hits / max(measured_hits + measured_misses, 1)
    locality_hits = snapshot.counters.get(
        'fleet.shard_locality{hit="true"}', 0)
    locality_misses = snapshot.counters.get(
        'fleet.shard_locality{hit="false"}', 0)
    quantile = lambda values, q: float(np.quantile(np.asarray(values), q))  # noqa: E731
    return {
        "matrices": matrices_count,
        "clients": clients,
        "requests": total,
        "replicas": 2,
        "fleet_wall_s": fleet_wall,
        "fleet_throughput_rps": total / fleet_wall,
        "single_wall_s": single_wall,
        "single_throughput_rps": total / single_wall,
        "cache_hit_rate": hit_rate,
        "shard_locality_rate": locality_hits / max(
            locality_hits + locality_misses, 1),
        "fleet_latency_ms_p50": quantile(fleet_latencies, 0.50),
        "fleet_latency_ms_p95": quantile(fleet_latencies, 0.95),
        "fleet_latency_ms_p99": quantile(fleet_latencies, 0.99),
        "single_latency_ms_p50": quantile(single_latencies, 0.50),
        "single_latency_ms_p95": quantile(single_latencies, 0.95),
        "single_latency_ms_p99": quantile(single_latencies, 0.99),
    }


def test_policy_warm_cache_speedup():
    """Warm repeat of a request must beat the cold build decisively."""
    result = bench_policy_cold_vs_warm()
    print(f"\npolicy cold {result['cold_s'] * 1e3:.1f} ms, "
          f"warm {result['warm_s'] * 1e3:.1f} ms "
          f"-> {result['speedup']:.1f}x")
    assert result["speedup"] >= REQUIRED_SPEEDUP, (
        f"warm serve only {result['speedup']:.1f}x faster "
        f"(required {REQUIRED_SPEEDUP}x)")


def test_shared_fingerprint_batching_faster_than_cold():
    """Batched same-matrix serving must beat K independent cold serves."""
    result = bench_shared_fingerprint_batching()
    print(f"\nbatching: cold {result['cold_total_s'] * 1e3:.0f} ms, "
          f"batched {result['batched_total_s'] * 1e3:.0f} ms "
          f"-> {result['speedup']:.1f}x")
    assert result["speedup"] >= 1.5, (
        f"batched serving only {result['speedup']:.1f}x faster than cold")


def test_throughput_stream_completes():
    """The queued stream completes and reports sane latency quantiles."""
    result = bench_throughput(requests=6)
    assert result["throughput_rps"] > 0
    assert (result["latency_ms_p99"] >= result["latency_ms_p95"]
            >= result["latency_ms_p50"] > 0)


def test_block_mode_needs_fewer_matvecs_than_loop():
    """The block-Krylov acceptance gate: strictly fewer total matvecs on a
    k >= 8 same-matrix batch, per-column residuals at the requested rtol
    (asserted inside the bench)."""
    result = bench_block_vs_loop(k=8)
    print(f"\nblock vs loop (k={result['k']}, n={result['n']}): "
          f"loop {result['loop_matvecs']} matvecs, "
          f"block {result['block_matvecs']} matvecs "
          f"({result['matvec_ratio']:.2f}x)")
    assert result["block_matvecs"] < result["loop_matvecs"], (
        f"block mode used {result['block_matvecs']} matvecs, loop "
        f"{result['loop_matvecs']} — no amortisation achieved")


def test_transport_overhead_keeps_results_identical():
    """HTTP serving costs wire overhead but never changes the arithmetic."""
    result = bench_transport_overhead(requests=3)
    print(f"\ntransport: in-process "
          f"{result['in_process_ms_per_request']:.2f} ms/req, HTTP "
          f"{result['http_ms_per_request']:.2f} ms/req "
          f"({result['http_overhead_factor']:.2f}x)")
    # the bit-identity assertions live inside the bench; here we only check
    # the numbers are sane (overhead can be noisy on shared runners)
    assert result["in_process_ms_per_request"] > 0
    assert result["http_ms_per_request"] > 0


def test_fleet_router_keeps_shards_hot():
    """The fleet acceptance gate: routed solves bit-identical to a single
    server (asserted inside the bench) with a >= 90 % warm-phase cache hit
    rate from fingerprint sharding, and sane latency quantiles."""
    result = bench_fleet_router(matrices_count=4, clients=2)
    print(f"\nfleet: {result['requests']} requests, cache hit rate "
          f"{result['cache_hit_rate']:.1%}, shard locality "
          f"{result['shard_locality_rate']:.1%}, p95 "
          f"{result['fleet_latency_ms_p95']:.1f} ms")
    assert result["cache_hit_rate"] >= 0.9, (
        f"sharded serving only hit the cache {result['cache_hit_rate']:.1%} "
        "of the time — routing is not cache-aligned")
    assert (result["fleet_latency_ms_p99"] >= result["fleet_latency_ms_p95"]
            >= result["fleet_latency_ms_p50"] > 0)


def main() -> None:
    results = {
        "throughput": bench_throughput(),
        "policy_cold_vs_warm": bench_policy_cold_vs_warm(),
        "shared_fingerprint_batching": bench_shared_fingerprint_batching(),
        "transport_overhead": bench_transport_overhead(),
        "block_vs_loop": bench_block_vs_loop(),
        "fleet_router": bench_fleet_router(),
    }
    for name, metrics in results.items():
        print(f"{name}: {json.dumps(metrics, indent=2)}")
    out_path = os.environ.get("BENCH_SERVER_JSON", "bench_server.json")
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2)
    print(f"wrote {out_path}")
    block_path = os.environ.get("BENCH_BLOCK_JSON", "bench_block_vs_loop.json")
    with open(block_path, "w", encoding="utf-8") as handle:
        json.dump(results["block_vs_loop"], handle, indent=2)
    print(f"wrote {block_path}")
    fleet_path = os.environ.get("BENCH_FLEET_JSON", "bench_fleet.json")
    with open(fleet_path, "w", encoding="utf-8") as handle:
        json.dump(results["fleet_router"], handle, indent=2)
    print(f"wrote {fleet_path}")
    assert results["fleet_router"]["cache_hit_rate"] >= 0.9, (
        f"fleet cache hit rate {results['fleet_router']['cache_hit_rate']:.1%}"
        " < required 90%")
    assert results["policy_cold_vs_warm"]["speedup"] >= REQUIRED_SPEEDUP, (
        f"policy warm path only {results['policy_cold_vs_warm']['speedup']:.1f}x "
        f"< required {REQUIRED_SPEEDUP}x")
    assert results["shared_fingerprint_batching"]["speedup"] >= 1.5
    assert results["block_vs_loop"]["block_matvecs"] < \
        results["block_vs_loop"]["loop_matvecs"]


if __name__ == "__main__":
    main()
