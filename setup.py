"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so that ``pip install -e .`` works in offline
environments where the ``wheel`` package (required for PEP 660 editable
installs) is unavailable and pip falls back to the legacy ``setup.py develop``
code path.
"""

from setuptools import setup

setup()
