"""Setuptools entry point.

Plain ``setup.py`` (no ``pyproject.toml``) so that ``pip install -e .`` works
in offline environments where the ``wheel`` package (required for PEP 660
editable installs) is unavailable and pip falls back to the legacy
``setup.py develop`` code path.  Installs the ``repro-serve`` and
``repro-fleet`` console scripts (see :mod:`repro.server.cli` and
:mod:`repro.fleet.cli`).
"""

import os

from setuptools import find_packages, setup


def _version() -> str:
    namespace: dict = {}
    here = os.path.dirname(os.path.abspath(__file__))
    with open(os.path.join(here, "src", "repro", "version.py"),
              encoding="utf-8") as handle:
        exec(handle.read(), namespace)
    return namespace["__version__"]


setup(
    name="repro",
    version=_version(),
    description=("Fast linear solvers via AI-tuned MCMC-based matrix "
                 "inversion — reproduction with a tuning service and "
                 "solve server"),
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages("src"),
    install_requires=["numpy", "scipy"],
    entry_points={
        "console_scripts": [
            "repro-serve=repro.server.cli:main",
            "repro-fleet=repro.fleet.cli:main",
        ],
    },
)
